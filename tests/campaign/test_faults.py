"""Tests of the deterministic fault harness and the self-healing executor.

The invariant under test everywhere: a campaign that suffers injected
crashes, hangs, poison trials, corrupted shared-memory records or locked
checkpoint stores still completes, and its aggregates are bit-identical
to a clean serial reference — minus quarantined trials, which are
reported as structured failure rows, never silently dropped.
"""

import dataclasses
import json
import signal
import sqlite3
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import run_campaign, table1_spec
from repro.campaign.cli import main as campaign_main
from repro.campaign.executor import (CampaignExecutionError,
                                     CampaignInterrupted)
from repro.campaign.faults import (FAULT_PLAN_ENV_VAR, FaultClause, FaultPlan,
                                   FaultPlanError, TrialFailure,
                                   resolve_fault_plan)
from repro.campaign.shm import shared_memory_available
from repro.campaign.store import CampaignStore, CampaignStoreError

_REPO_ROOT = Path(__file__).resolve().parents[2]

needs_shm = pytest.mark.skipif(not shared_memory_available(),
                               reason="multiprocessing.shared_memory missing")


def _tiny_spec(replicates=8):
    return table1_spec(mean_toffs=(18.0,), replicates=replicates,
                       duration=120.0, legacy_seed=None)


def _payload(result):
    return json.dumps(result.to_json()["campaign"], sort_keys=True)


def _payload_without(result, *trial_indices):
    """The reference payload with the given trial indices dropped.

    Rebuilds the result around the surviving summaries, so groups and
    counts are recomputed exactly as a faulted run would report them.
    """
    spec_runs = result.spec.expand(result.master_seed)
    dropped = {(spec_runs[i].replicate, spec_runs[i].seed)
               for i in trial_indices}
    keep = tuple(s for s in result.summaries
                 if (s.replicate, s.seed) not in dropped)
    return _payload(dataclasses.replace(result, summaries=keep))


@pytest.fixture(scope="module")
def clean_serial():
    return run_campaign(_tiny_spec(), seed=7, max_workers=1,
                        engine="reference")


class TestFaultPlanParsing:
    def test_parse_all_kinds_and_describe_round_trip(self):
        text = ("crash@batch=2;hang@batch=3,secs=5;raise@trial=4,times=1;"
                "corrupt@batch=6;lock@commit=1,times=2")
        plan = FaultPlan.parse(text)
        assert [c.kind for c in plan.clauses] == [
            "crash", "hang", "raise", "corrupt", "lock"]
        assert plan.crash_at(2) and not plan.crash_at(1)
        assert plan.hang_secs(3) == 5.0 and plan.hang_secs(2) == 0.0
        assert plan.corrupt_at(6) and not plan.corrupt_at(2)
        assert FaultPlan.parse(plan.describe()).describe() == plan.describe()

    def test_empty_and_env_resolution(self, monkeypatch):
        assert not FaultPlan.parse("  ")
        monkeypatch.delenv(FAULT_PLAN_ENV_VAR, raising=False)
        assert FaultPlan.from_env() is None
        assert resolve_fault_plan(None) is None
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "crash@batch=1")
        assert resolve_fault_plan(None).crash_at(1)
        explicit = FaultPlan.parse("hang@batch=9")
        assert resolve_fault_plan(explicit) is explicit
        assert resolve_fault_plan("corrupt@batch=2").corrupt_at(2)

    @pytest.mark.parametrize("bad", [
        "explode@batch=1",          # unknown kind
        "crash@batch=1,trial=2",    # key not allowed for kind
        "crash",                    # missing @key=value
        "crash@batch=x",            # bad value
        "crash@batch=1,p=0.5",      # batch and p are exclusive
        "crash@p=1.5",              # p out of range
        "raise@times=2",            # raise needs trial=
        "lock@times=1",             # lock needs commit=
    ])
    def test_malformed_plans_raise(self, bad):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(bad)

    def test_probabilistic_clauses_are_deterministic(self):
        clause = FaultClause(kind="crash", p=0.5, seed=3)
        draws = [clause.fires_at(d) for d in range(1, 200)]
        again = [clause.fires_at(d) for d in range(1, 200)]
        assert draws == again
        assert any(draws) and not all(draws)
        assert all(FaultClause(kind="crash", p=1.0).fires_at(d)
                   for d in range(1, 50))
        assert not any(FaultClause(kind="crash", p=0.0).fires_at(d)
                       for d in range(1, 50))

    def test_raise_and_lock_budgets(self):
        plan = FaultPlan.parse("raise@trial=3,times=2;lock@commit=4")
        assert plan.raise_in_trial(3, 0) and plan.raise_in_trial(3, 1)
        assert not plan.raise_in_trial(3, 2)      # transient: expires
        assert not plan.raise_in_trial(2, 0)
        poison = FaultPlan.parse("raise@trial=3")
        assert all(poison.raise_in_trial(3, attempt)
                   for attempt in range(10))      # poison: never expires
        assert plan.lock_commit(4, 0) and not plan.lock_commit(4, 1)
        assert not plan.lock_commit(3, 0)


class TestSerialRecovery:
    def test_poison_trial_is_quarantined_and_rest_is_exact(self, clean_serial):
        result = run_campaign(_tiny_spec(), seed=7, max_workers=1,
                              engine="reference", max_retries=1,
                              fault_plan="raise@trial=3")
        assert len(result.quarantined) == 1
        failure = result.quarantined[0]
        assert failure.trial_index == 3
        assert failure.kind == "InjectedTrialFault"
        assert failure.attempts == 2              # first try + one retry
        assert result.total_trials == clean_serial.total_trials - 1
        assert _payload(result) == _payload_without(clean_serial, 3)
        kinds = [kind for kind, _ in result.recovery_events]
        assert "retry" in kinds and "quarantine" in kinds

    def test_transient_fault_retries_to_bit_identical(self, clean_serial):
        result = run_campaign(_tiny_spec(), seed=7, max_workers=1,
                              engine="reference", max_retries=2,
                              fault_plan="raise@trial=2,times=1")
        assert not result.quarantined
        assert _payload(result) == _payload(clean_serial)

    def test_zero_retries_quarantines_after_first_failure(self):
        result = run_campaign(_tiny_spec(), seed=7, max_workers=1,
                              engine="reference", max_retries=0,
                              fault_plan="raise@trial=0")
        assert len(result.quarantined) == 1
        assert result.quarantined[0].attempts == 1

    def test_batched_serial_bisection_isolates_offender(self, clean_serial):
        # One poison trial inside a 4-lane lockstep batch: the whole batch
        # aborts, bisection must isolate trial 5 and keep its batch mates.
        result = run_campaign(_tiny_spec(), seed=7, max_workers=1,
                              engine="batched", batch_size=4, max_retries=0,
                              fault_plan="raise@trial=5")
        assert [f.trial_index for f in result.quarantined] == [5]
        assert _payload(result) == _payload_without(clean_serial, 5)
        assert "bisect" in [kind for kind, _ in result.recovery_events]

    def test_validation_of_recovery_parameters(self):
        spec = _tiny_spec(2)
        with pytest.raises(ValueError):
            run_campaign(spec, max_retries=-1)
        with pytest.raises(ValueError):
            run_campaign(spec, max_respawns=-1)
        with pytest.raises(ValueError):
            run_campaign(spec, batch_deadline=0.0)
        with pytest.raises(FaultPlanError):
            run_campaign(spec, fault_plan="bogus@x=1")


class TestPooledRecovery:
    def test_crashed_worker_respawns_bit_identically(self, clean_serial):
        result = run_campaign(_tiny_spec(), seed=7, max_workers=2,
                              engine="reference", batch_size=2,
                              fault_plan="crash@batch=2")
        assert not result.quarantined
        assert _payload(result) == _payload(clean_serial)
        assert "pool-respawn" in [kind for kind, _ in result.recovery_events]

    def test_hung_worker_is_killed_at_the_deadline(self, clean_serial):
        result = run_campaign(_tiny_spec(), seed=7, max_workers=2,
                              engine="reference", batch_size=2,
                              batch_deadline=3.0,
                              fault_plan="hang@batch=2,secs=60")
        assert not result.quarantined
        assert _payload(result) == _payload(clean_serial)
        kinds = [kind for kind, _ in result.recovery_events]
        assert "deadline-kill" in kinds and "pool-respawn" in kinds

    @needs_shm
    def test_pooled_batched_poison_bisection(self, clean_serial):
        result = run_campaign(_tiny_spec(), seed=7, max_workers=2,
                              engine="batched", batch_size=4, shm=True,
                              max_retries=1, fault_plan="raise@trial=6")
        assert [f.trial_index for f in result.quarantined] == [6]
        assert _payload(result) == _payload_without(clean_serial, 6)

    @needs_shm
    def test_corrupted_ring_generation_is_detected_and_retried(
            self, clean_serial):
        result = run_campaign(_tiny_spec(), seed=7, max_workers=2,
                              engine="batched", batch_size=4, shm=True,
                              fault_plan="corrupt@batch=1")
        assert not result.quarantined
        assert _payload(result) == _payload(clean_serial)

    def test_respawn_budget_exhaustion_names_the_store(self, tmp_path):
        db = tmp_path / "campaign.db"
        with pytest.raises(CampaignExecutionError) as info:
            run_campaign(_tiny_spec(), seed=7, max_workers=2,
                         engine="reference", batch_size=2, max_respawns=1,
                         store=db, fault_plan="crash@p=1.0")
        assert info.value.store_path == str(db)
        assert "--resume" in str(info.value)
        # Whatever retired before the abort survives for --resume.
        with CampaignStore(db) as store:
            assert store.status() is not None

    def test_acceptance_crash_hang_poison_combo(self, tmp_path, clean_serial):
        # The issue's acceptance scenario: one worker SIGKILLed, another
        # hung past the deadline, one poison trial -- the campaign must
        # complete without a manual --resume, record exactly one failure
        # row, and match the serial reference minus the quarantined trial.
        db = tmp_path / "campaign.db"
        result = run_campaign(
            _tiny_spec(), seed=7, max_workers=2, engine="reference",
            batch_size=2, batch_deadline=3.0, max_retries=1, store=db,
            fault_plan="crash@batch=2;hang@batch=3,secs=60;raise@trial=7")
        assert [f.trial_index for f in result.quarantined] == [7]
        assert _payload(result) == _payload_without(clean_serial, 7)
        kinds = {kind for kind, _ in result.recovery_events}
        # The hang is absorbed either by the deadline watchdog or by the
        # crash's pool-break drain (whichever trips first — both SIGKILL
        # the hung worker); the respawn and the quarantine are always due.
        assert {"pool-respawn", "quarantine"} <= kinds
        with CampaignStore(db) as store:
            rows = store.failures()
            assert len(rows) == 1 and rows[0].trial_index == 7
            assert store.status().quarantined == 1


class TestStoreFaults:
    def test_locked_commits_retry_with_backoff(self, tmp_path):
        db = tmp_path / "campaign.db"
        with CampaignStore(db) as store:
            result = run_campaign(_tiny_spec(), seed=7, max_workers=1,
                                  engine="reference", store=store,
                                  fault_plan="lock@commit=2,times=2")
            assert store.commit_retries >= 2
        assert "store-retry" in [kind for kind, _ in result.recovery_events]

    def test_lock_budget_exhaustion_raises_store_error(self, tmp_path):
        db = tmp_path / "campaign.db"
        with pytest.raises(CampaignStoreError, match="still failing"):
            run_campaign(_tiny_spec(), seed=7, max_workers=1,
                         engine="reference", store=db,
                         fault_plan="lock@commit=2,times=99")

    def test_failure_rows_round_trip(self, tmp_path):
        db = tmp_path / "campaign.db"
        failure = TrialFailure(trial_index=3, label="cell", replicate=1,
                               seed=42, attempts=2, kind="RuntimeError",
                               message="boom")
        with CampaignStore(db) as store:
            store.record_failure(failure)
            store.record_failure(failure)          # idempotent
            assert store.failures() == [failure]
        assert "quarantined" in failure.describe()

    def test_read_only_store_serves_status_but_rejects_runs(self, tmp_path):
        db = tmp_path / "campaign.db"
        code = campaign_main(["--experiment", "table1", "--quiet",
                              "--duration", "100", "--seed", "7",
                              "--store", str(db)])
        assert code in (0, 1)
        with CampaignStore(db, read_only=True) as store:
            assert store.status().complete
            with pytest.raises(CampaignStoreError, match="read-only"):
                store.begin(_tiny_spec(), 7, "summary")
        with pytest.raises(CampaignStoreError):
            CampaignStore(tmp_path / "missing.db", read_only=True)

    def test_wal_and_busy_timeout_are_configured(self, tmp_path):
        db = tmp_path / "campaign.db"
        with CampaignStore(db) as store:
            mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
            timeout = store._conn.execute("PRAGMA busy_timeout").fetchone()[0]
        assert mode == "wal"
        assert timeout == 5000

    def test_resume_keeps_prior_quarantine(self, tmp_path, clean_serial):
        db = tmp_path / "campaign.db"
        first = run_campaign(_tiny_spec(), seed=7, max_workers=1,
                             engine="reference", max_retries=0, store=db,
                             fault_plan="raise@trial=4")
        assert [f.trial_index for f in first.quarantined] == [4]
        resumed = run_campaign(_tiny_spec(), seed=7, max_workers=1,
                               engine="reference", store=db, resume=True)
        assert [f.trial_index for f in resumed.quarantined] == [4]
        assert resumed.replayed_trials == clean_serial.total_trials - 1
        assert _payload(resumed) == _payload_without(clean_serial, 4)


def _cli_cmd(*args):
    return [sys.executable, "-u", "-m", "repro.campaign", *args]


def _cli_env():
    import os
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(_REPO_ROOT / "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    env.pop(FAULT_PLAN_ENV_VAR, None)
    return env


class TestCliRecovery:
    def test_bad_fault_plan_is_a_usage_error(self, capsys):
        assert campaign_main(["--fault-plan", "explode@batch=1"]) == 2
        assert "fault plan" in capsys.readouterr().err

    def test_recovery_flag_validation(self, capsys):
        assert campaign_main(["--max-retries", "-1"]) == 2
        assert campaign_main(["--batch-deadline", "0"]) == 2
        assert campaign_main(["--max-respawns", "-1"]) == 2
        capsys.readouterr()

    def test_quarantine_is_reported(self, capsys):
        code = campaign_main(["--experiment", "table1", "--quiet",
                              "--duration", "100", "--seed", "7",
                              "--replicates", "2", "--max-retries", "0",
                              "--fault-plan", "raise@trial=1"])
        assert code in (0, 1)
        out = capsys.readouterr().out
        assert "WARNING: 1 trial(s) quarantined" in out
        assert "recovery events" in out

    def test_exhausted_respawn_budget_exits_3_with_resume_hint(
            self, tmp_path):
        db = tmp_path / "campaign.db"
        proc = subprocess.run(
            _cli_cmd("--experiment", "table1", "--quiet", "--duration", "100",
                     "--seed", "7", "--replicates", "4", "--workers", "2",
                     "--batch-size", "2", "--engine", "reference",
                     "--store", str(db), "--max-respawns", "0",
                     "--fault-plan", "crash@p=1.0"),
            cwd=_REPO_ROOT, env=_cli_env(), capture_output=True, text=True,
            timeout=300)
        assert proc.returncode == 3, proc.stderr
        assert "--resume" in proc.stderr

    def test_sigint_flushes_checkpoints_and_exits_130(self, tmp_path):
        db = tmp_path / "campaign.db"
        proc = subprocess.Popen(
            _cli_cmd("--experiment", "table1", "--duration", "100",
                     "--seed", "7", "--replicates", "2", "--store", str(db)),
            cwd=_REPO_ROOT, env=_cli_env(), stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True)
        for line in proc.stdout:
            if "replicate" in line:
                break
        proc.send_signal(signal.SIGINT)
        proc.wait(timeout=120)
        stderr = proc.stderr.read()
        proc.stdout.close()
        proc.stderr.close()
        assert proc.returncode == 130, stderr
        assert "--resume" in stderr

        with CampaignStore(db) as store:
            assert store.status().checkpointed >= 1

        out = tmp_path / "resumed.json"
        code = campaign_main(["--experiment", "table1", "--quiet",
                              "--duration", "100", "--seed", "7",
                              "--replicates", "2", "--store", str(db),
                              "--resume", "--json", str(out)])
        assert code in (0, 1)
        payload = json.loads(out.read_text())
        assert payload["campaign"]["total_trials"] == 8


class TestSchemaV4:
    def test_failures_and_estimator_tables_exist_with_schema_v4(self, tmp_path):
        db = tmp_path / "campaign.db"
        with CampaignStore(db) as store:
            store.begin(_tiny_spec(2), 7, "summary")
        conn = sqlite3.connect(db)
        try:
            version = conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            tables = {row[0] for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table'")}
        finally:
            conn.close()
        assert version is not None and int(version[0]) == 4
        assert "failures" in tables
        assert "estimator" in tables

    def test_interrupted_error_message_carries_signal(self):
        exc = CampaignInterrupted(signal.SIGTERM)
        assert exc.signum == signal.SIGTERM
        assert "signal" in str(exc)
        assert isinstance(exc, BaseException)
        assert not isinstance(exc, Exception)
