"""Tests of the campaign service: protocol, warm-pool jobs, restart-resume.

The acceptance contract of service mode: a campaign submitted to the
daemon produces aggregates bit-identical to ``run_campaign`` with the
same ``(spec, master_seed)`` — including across a mid-job SIGKILL of the
daemon followed by a restart against the same stores directory — and
consecutive jobs share one warm worker pool (identical worker PIDs).
"""

import dataclasses
import json
import os
import socket
import sqlite3
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.campaign import run_campaign
from repro.campaign.cli import main as campaign_main
from repro.campaign.presets import PRESETS
from repro.campaign.service import (CampaignService, ProtocolError,
                                    ServiceClient, decode_spec, encode_spec,
                                    recv_frame, send_frame)
from repro.campaign.store import CRASH_ENV_VAR, CRASH_EXIT_CODE, spec_fingerprint

_REPO_ROOT = Path(__file__).resolve().parents[2]
_SRC = str(_REPO_ROOT / "src")

#: Fast campaign cells used throughout: short Table I trials and the
#: (inherently short) interlock preset.
_TABLE1_KWARGS = dict(replicates=2, duration=100.0)


def _spec_table1():
    return PRESETS["table1"].build(**_TABLE1_KWARGS)


def _spec_interlock():
    return PRESETS["interlock"].build()


def _reference_cells(spec, seed):
    """Serial-reference per-cell aggregates, as the service reports them."""
    result = run_campaign(spec, seed=seed, max_workers=1)
    return [dataclasses.asdict(group) for group in result.groups()]


def _wait_for_socket(path, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            try:
                ServiceClient(str(path)).status()
                return
            except OSError:
                pass
        time.sleep(0.1)
    raise AssertionError(f"no service socket at {path}")


@pytest.fixture()
def service(tmp_path):
    """An in-process service on a temp socket, torn down after the test."""
    sock = str(tmp_path / "svc.sock")
    stores = str(tmp_path / "stores")
    svc = CampaignService(sock, stores, max_workers=2)
    thread = threading.Thread(target=svc.serve, daemon=True)
    thread.start()
    _wait_for_socket(sock)
    yield svc, ServiceClient(sock)
    svc.initiate_shutdown()
    thread.join(timeout=60.0)
    assert not thread.is_alive()


# --------------------------------------------------------------------------
# Protocol
# --------------------------------------------------------------------------

def test_frame_roundtrip_and_eof():
    left, right = socket.socketpair()
    with left, right:
        send_frame(left, {"v": 1, "op": "status", "njobs": 3})
        send_frame(left, {"nested": {"a": [1, 2.5, None, True]}})
        assert recv_frame(right) == {"v": 1, "op": "status", "njobs": 3}
        assert recv_frame(right) == {"nested": {"a": [1, 2.5, None, True]}}
        left.shutdown(socket.SHUT_WR)
        assert recv_frame(right) is None  # clean EOF between frames


def test_truncated_frame_raises():
    left, right = socket.socketpair()
    with left, right:
        left.sendall(b"\x00\x00\x00\x10partial")
        left.shutdown(socket.SHUT_WR)
        with pytest.raises(ProtocolError):
            recv_frame(right)


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_spec_codec_roundtrips_every_preset(name):
    spec = PRESETS[name].build()
    wire = json.loads(json.dumps(encode_spec(spec)))  # a real JSON round trip
    back = decode_spec(wire)
    assert back == spec
    assert spec_fingerprint(back, 7) == spec_fingerprint(spec, 7)


def test_decode_rejects_malformed_spec():
    with pytest.raises(ProtocolError):
        decode_spec({"name": "x"})  # no trials
    wire = encode_spec(_spec_interlock())
    wire["trials"][0]["replicates"] = "three"
    with pytest.raises(ProtocolError):
        decode_spec(wire)


# --------------------------------------------------------------------------
# --status --json (shared schema)
# --------------------------------------------------------------------------

def test_status_json_flag_matches_service_schema(tmp_path, capsys):
    store = str(tmp_path / "interlock.db")
    assert campaign_main(["--experiment", "interlock", "--quiet",
                          "--store", store]) == 0
    capsys.readouterr()
    assert campaign_main(["--store", store, "--status", "--json"]) == 0
    body = json.loads(capsys.readouterr().out)
    assert body["store"] == store
    status = body["status"]
    assert status["complete"] is True
    assert status["checkpointed"] == status["total_trials"] == 2
    assert status["stage"] == "complete"
    assert set(status) == {"name", "fingerprint", "master_seed", "payload",
                           "total_trials", "checkpointed", "complete",
                           "quarantined", "stage"}


# --------------------------------------------------------------------------
# Warm-pool jobs: shared PIDs + bit-identity
# --------------------------------------------------------------------------

def test_two_jobs_share_one_warm_pool_bit_identically(service):
    svc, client = service
    spec1, spec2 = _spec_table1(), _spec_interlock()
    job1 = client.submit(spec1, 7)["job"]
    job2 = client.submit(spec2, 7)["job"]
    assert job1 == spec_fingerprint(spec1, 7)

    events = list(client.watch(job1[:12]))  # prefix lookup
    assert events[0]["event"] == "snapshot"
    assert events[-1]["event"] == "done"
    assert events[-1]["state"] == "complete"
    trial_events = [e for e in events if e.get("event") == "trial"]
    assert trial_events, "watch streamed no per-trial aggregate snapshots"
    assert trial_events[-1]["done"] == spec1.total_trials
    assert any(e.get("event") == "checkpoint" for e in events)

    drained = client.drain()["jobs"]
    assert drained == {job1: "complete", job2: "complete"}

    status1 = client.status(job1)
    status2 = client.status(job2)
    # One warm pool across both jobs: identical, non-empty worker PIDs.
    assert status1["pool_pids"] == status2["pool_pids"]
    assert status1["pool_pids"], "no worker PIDs recorded"
    assert status1["store"]["complete"] and status2["store"]["complete"]
    # Aggregates bit-identical to the serial reference runs.
    assert status1["cells"] == _reference_cells(spec1, 7)
    assert status2["cells"] == _reference_cells(spec2, 7)

    # Idempotent re-submission: same fingerprint, no second job.
    again = client.submit(spec1, 7)
    assert again["job"] == job1 and again["duplicate"] is True


def test_cancel_queued_job_is_immediate(service):
    svc, client = service
    job1 = client.submit(_spec_table1(), 7)["job"]
    job2 = client.submit(_spec_interlock(), 7, priority=-1)["job"]
    cancelled = client.cancel(job2)
    assert cancelled["state"] == "cancelled"
    drained = client.drain()["jobs"]
    assert drained[job1] == "complete"
    assert drained[job2] == "cancelled"
    final = list(client.watch(job2))[-1]
    assert final["event"] == "done"
    assert final["state"] == "cancelled"


def test_service_status_lists_jobs(service):
    svc, client = service
    job = client.submit(_spec_interlock(), 7)["job"]
    client.drain()
    overview = client.status()
    assert [j["job"] for j in overview["jobs"]] == [job]
    assert overview["queued"] == 0
    assert overview["jobs"][0]["state"] == "complete"


# --------------------------------------------------------------------------
# Restart recovery: SIGKILL the daemon mid-job, resume bit-identically
# --------------------------------------------------------------------------

def _daemon_cmd(sock, stores):
    return [sys.executable, "-u", "-m", "repro.campaign", "serve",
            "--socket", str(sock), "--stores-dir", str(stores),
            "--workers", "2"]


def _daemon_env(crash_after=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(CRASH_ENV_VAR, None)
    if crash_after is not None:
        env[CRASH_ENV_VAR] = str(crash_after)
    return env


def test_daemon_sigkill_mid_job_restart_resumes_bit_identically(tmp_path):
    sock = tmp_path / "svc.sock"
    stores = tmp_path / "stores"
    spec1, spec2 = _spec_table1(), _spec_interlock()

    # First daemon: hard-dies (os._exit, the moral equivalent of SIGKILL)
    # right after job 1's second checkpoint commit.
    first = subprocess.Popen(_daemon_cmd(sock, stores),
                             env=_daemon_env(crash_after=2))
    try:
        _wait_for_socket(sock)
        client = ServiceClient(str(sock))
        job1 = client.submit(spec1, 7, priority=1)["job"]
        job2 = client.submit(spec2, 7)["job"]
        assert first.wait(timeout=300) == CRASH_EXIT_CODE
    finally:
        if first.poll() is None:
            first.kill()
            first.wait()

    # The dead daemon left a partially checkpointed store for job 1 and an
    # untouched queue entry for job 2.
    conn = sqlite3.connect(stores / f"{job1}.db")
    (partial,) = conn.execute("SELECT COUNT(*) FROM trials").fetchone()
    conn.close()
    assert 0 < partial < spec1.total_trials

    # Second daemon, same stores dir, no crash injection: recovery must
    # re-enqueue both jobs and finish them without re-simulating the
    # checkpointed prefix.
    second = subprocess.Popen(_daemon_cmd(sock, stores), env=_daemon_env())
    try:
        _wait_for_socket(sock)
        client = ServiceClient(str(sock))
        drained = client.drain()["jobs"]
        assert drained == {job1: "complete", job2: "complete"}
        status1 = client.status(job1)
        status2 = client.status(job2)
        assert status1["cells"] == _reference_cells(spec1, 7)
        assert status2["cells"] == _reference_cells(spec2, 7)
        assert status1["store"]["complete"] and status2["store"]["complete"]
        client.shutdown()
        assert second.wait(timeout=60) == 0
    finally:
        if second.poll() is None:
            second.kill()
            second.wait()
    assert not sock.exists(), "graceful shutdown must unlink the socket"
    leaked = [name for name in os.listdir("/dev/shm")
              if name.startswith("repro-")] if os.path.isdir("/dev/shm") else []
    assert not leaked, f"leaked shared-memory segments: {leaked}"


# --------------------------------------------------------------------------
# Interlock preset (satellite): compiled-engine smoke
# --------------------------------------------------------------------------

def test_interlock_preset_compiled_smoke():
    preset = PRESETS["interlock"]
    result = run_campaign(preset.build(), seed=1, engine="compiled")
    experiment = preset.to_result(result)
    assert experiment.checks == {"lease_keeps_pte_order": True,
                                 "baseline_violates_pte_order": True}
    assert experiment.passed


def test_interlock_preset_cli_alias(capsys):
    assert campaign_main(["--preset", "interlock", "--engine", "compiled",
                          "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "Industrial interlock" in out
