"""Tests of the shared-memory batch plane and zero-copy results path.

The load-bearing guarantee is unchanged from the rest of the campaign
layer: aggregates must be bit-identical to the serial reference for every
combination of worker count, batch size, payload, shm on/off and
crash/resume split — the memory plane is a transport, never a semantics
change.  On top of that, these tests pin the plane/ring plumbing itself:
record round-trips, generation validation, lane-range isolation, external
buffers driving the batched engine, and segment cleanup after crashes
(including a SIGKILLed worker).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import run_campaign, table1_spec
from repro.campaign.aggregate import SUMMARY_RECORD_FIELDS, TrialSummary
from repro.campaign.executor import CRASH_WORKER_ENV_VAR, _resolve_shm
from repro.campaign.shm import (ResultsRing, ShmError, ShmSession, StatePlane,
                                _RangeAllocator, leaked_segments, plane_layout,
                                shared_memory_available, summary_record_dtype)
from repro.campaign.store import CampaignStore
from repro.casestudy import CaseStudyConfig
from repro.casestudy.emulation import _lowered_case_study, run_trial_batch
from repro.hybrid.simulate.batched import build_batched_tables

pytestmark = pytest.mark.skipif(not shared_memory_available(),
                                reason="multiprocessing.shared_memory missing")

_REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def no_new_segments():
    """Assert the test leaves no new ``repro-`` segment in ``/dev/shm``."""
    before = set(leaked_segments())
    yield
    import time
    deadline = time.monotonic() + 30
    while set(leaked_segments()) - before and time.monotonic() < deadline:
        time.sleep(0.2)
    assert set(leaked_segments()) - before == set()


def _subprocess_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(_REPO_ROOT / "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    env.pop(CRASH_WORKER_ENV_VAR, None)
    env.update(extra)
    return env


def _tiny_spec(replicates=8):
    return table1_spec(mean_toffs=(18.0,), replicates=replicates,
                       duration=120.0, legacy_seed=None)


def _campaign_payload(result):
    return json.dumps(result.to_json()["campaign"], sort_keys=True)


@pytest.fixture(scope="module")
def reference_payload():
    return _campaign_payload(run_campaign(_tiny_spec(), seed=7, max_workers=1,
                                          engine="reference"))


def _example_summary(seed=123):
    return TrialSummary(
        label="cell", spec_index=2, replicate=5, seed=seed, with_lease=True,
        mean_toff=18.0, duration=120.0, laser_emissions=7, failures=1,
        evt_to_stop=3, ventilator_pauses=6, max_emission_duration=2.25,
        max_pause_duration=14.5, min_spo2=93.0625, supervisor_aborts=0,
        surgeon_requests=9, surgeon_cancels=2, observed_loss_ratio=0.31640625)


class TestRecordCodec:
    def test_round_trip_is_bit_exact(self):
        summary = _example_summary()
        back = TrialSummary.from_record(summary.to_record(), label="cell")
        assert back == summary
        # json payload equality matters for to_json determinism checks
        import dataclasses
        assert (json.dumps(dataclasses.asdict(back))
                == json.dumps(dataclasses.asdict(summary)))

    def test_record_covers_every_field_but_label(self):
        import dataclasses
        names = {f.name for f in dataclasses.fields(TrialSummary)}
        assert {name for name, _ in SUMMARY_RECORD_FIELDS} == names - {"label"}

    def test_from_record_restores_python_types(self):
        import numpy as np
        summary = _example_summary()
        arr = np.zeros(1, dtype=summary_record_dtype())
        for (name, _), value in zip(SUMMARY_RECORD_FIELDS,
                                    summary.to_record()):
            arr[0][name] = value
        back = TrialSummary.from_record(arr[0], label="cell")
        assert back == summary
        assert type(back.failures) is int
        assert type(back.min_spo2) is float
        assert type(back.with_lease) is bool


class TestResultsRing:
    def test_write_read_round_trip(self):
        ring = ResultsRing.create(8)
        try:
            summary = _example_summary()
            ring.write(3, 17, 42, summary)
            (back,) = ring.read(3, 1, 17, ["cell"])
            assert back == summary
        finally:
            ring.destroy()

    def test_generation_mismatch_raises(self):
        ring = ResultsRing.create(4)
        try:
            ring.write(0, 1, 0, _example_summary())
            with pytest.raises(ShmError):
                ring.read(0, 1, 2, ["cell"])
        finally:
            ring.destroy()

    def test_cross_process_visibility(self):
        ring = ResultsRing.create(4)
        try:
            code = (
                "from repro.campaign import shm\n"
                "from tests.campaign.test_shm import _example_summary\n"
                f"ring = shm.attach_ring({ring.segment.name!r}, 4)\n"
                "ring.write(1, 9, 77, _example_summary(seed=555))\n")
            subprocess.run([sys.executable, "-c", code], check=True,
                           env=_subprocess_env(), cwd=_REPO_ROOT)
            (back,) = ring.read(1, 1, 9, ["cell"])
            assert back.seed == 555
        finally:
            ring.destroy()


class TestStatePlane:
    def test_layout_is_aligned_and_disjoint(self):
        size, layout = plane_layout(4, 10, 3)
        spans = []
        for name, (offset, shape, dtype) in layout.items():
            assert offset % dtype.itemsize == 0, name
            spans.append((offset, offset + shape[0] * shape[1] * dtype.itemsize))
        spans.sort()
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start
        assert size == spans[-1][1]

    def test_plane_backed_engine_is_bit_identical(self):
        config = CaseStudyConfig()
        _, lowered = _lowered_case_study(config, True)
        state, cross = build_batched_tables(lowered).plane_columns()
        seeds = [11, 22, 33]
        base = run_trial_batch(config, with_lease=True, seeds=seeds,
                               duration=90.0)
        plane = StatePlane.create(8, state, cross)
        try:
            # lanes [2, 5) of a larger plane, i.e. a worker's lane range
            ext = run_trial_batch(config, with_lease=True, seeds=seeds,
                                  duration=90.0,
                                  buffers=plane.buffers(2, len(seeds)))
        finally:
            plane.destroy()
        for a, b in zip(base, ext):
            for field in ("laser_emissions", "failures", "evt_to_stop",
                          "ventilator_pauses", "max_emission_duration",
                          "max_pause_duration", "min_spo2",
                          "supervisor_aborts", "observed_loss_ratio"):
                assert getattr(a, field) == getattr(b, field), field

    def test_lane_range_out_of_bounds(self):
        plane = StatePlane.create(4, 8, 2)
        try:
            with pytest.raises(ShmError):
                plane.buffers(3, 2)
        finally:
            plane.destroy()


class TestRangeAllocator:
    def test_exhaustion_and_merge(self):
        alloc = _RangeAllocator(8)
        a = alloc.allocate(3)
        b = alloc.allocate(3)
        c = alloc.allocate(2)
        assert (a, b, c) == (0, 3, 6)
        assert alloc.allocate(1) is None
        alloc.free(b, 3)
        assert alloc.allocate(4) is None  # 3 free in the middle, 0 at ends
        alloc.free(c, 2)                  # merges [3,6)+[6,8)
        assert alloc.allocate(5) == 3
        alloc.free(3, 5)
        alloc.free(a, 3)                  # merges back to [0,8)
        assert alloc.allocate(8) == 0


class TestShmResolution:
    def test_auto_and_forced_modes(self):
        assert _resolve_shm(None, "batched", "summary", True) is True
        assert _resolve_shm(None, "compiled", "summary", True) is False
        assert _resolve_shm(True, "compiled", "summary", True) is True
        assert _resolve_shm(False, "batched", "summary", True) is False
        # serial runs and "full" payload always fall back
        assert _resolve_shm(True, "batched", "summary", False) is False
        assert _resolve_shm(None, "batched", "full", True) is False
        assert _resolve_shm(True, "batched", "full", True) is False


class TestCampaignEquivalence:
    def test_cross_worker_batch_is_bit_identical(self, reference_payload,
                                                 no_new_segments):
        # One cell's 8 lanes split over 2 workers (batch 4): the tentpole
        # cross-worker case, on the shared plane.
        result = run_campaign(_tiny_spec(), seed=7, max_workers=2,
                              engine="batched", batch_size=4, shm=True)
        assert _campaign_payload(result) == reference_payload

    def test_shm_off_matches(self, reference_payload):
        result = run_campaign(_tiny_spec(), seed=7, max_workers=2,
                              engine="batched", batch_size=4, shm=False)
        assert _campaign_payload(result) == reference_payload

    def test_stats_payload_keeps_results(self, reference_payload):
        result = run_campaign(_tiny_spec(), seed=7, max_workers=2,
                              engine="batched", batch_size=4,
                              payload="stats", shm=True)
        assert _campaign_payload(result) == reference_payload
        assert all(r is not None and r.monitor is not None
                   for r in result.results)

    def test_scalar_engine_ring_only(self, reference_payload,
                                     no_new_segments):
        # shm=True with the compiled kernel: no plane, ring-only transport.
        result = run_campaign(_tiny_spec(), seed=7, max_workers=2,
                              engine="compiled", shm=True)
        assert _campaign_payload(result) == reference_payload

    def test_full_payload_falls_back(self, reference_payload):
        result = run_campaign(_tiny_spec(), seed=7, max_workers=2,
                              engine="batched", batch_size=4,
                              payload="full", shm=True)
        assert _campaign_payload(result) == reference_payload

    def test_store_commit_from_ring_and_resume(self, tmp_path,
                                               reference_payload):
        db = tmp_path / "campaign.db"
        first = run_campaign(_tiny_spec(), seed=7, max_workers=2,
                             engine="batched", batch_size=4, shm=True,
                             store=db)
        assert _campaign_payload(first) == reference_payload
        with CampaignStore(db) as store:
            assert store.checkpointed_count() == 16
        resumed = run_campaign(_tiny_spec(), seed=7, max_workers=2,
                               engine="batched", batch_size=4, shm=True,
                               store=db, resume=True)
        assert resumed.replayed_trials == 16
        assert _campaign_payload(resumed) == reference_payload

    def test_crash_resume_split_across_shm_modes(self, tmp_path,
                                                 reference_payload):
        # Checkpoint a prefix with shm off, resume the remainder with shm
        # on: the split must be invisible in the aggregates.
        db = tmp_path / "campaign.db"
        spec = _tiny_spec()
        runs = spec.expand(7)
        with CampaignStore(db) as store:
            store.begin(spec, 7, "summary")
            from repro.campaign.executor import execute_batch
            prefix = [(run.index, run.replicate, run.seed)
                      for run in runs[:6]]
            chunk = execute_batch(spec, (runs[0].spec_index, tuple(prefix)),
                                  "summary", "batched")
            store.checkpoint_batch(chunk)
        resumed = run_campaign(spec, seed=7, max_workers=2,
                               engine="batched", batch_size=4, shm=True,
                               store=db, resume=True)
        assert resumed.replayed_trials == 6
        assert _campaign_payload(resumed) == reference_payload


class TestCrashCleanup:
    def test_sigkilled_worker_leaks_no_segments(self, no_new_segments):
        # Run the campaign in a subprocess where *every* worker SIGKILLs
        # itself on its first task: the supervisor retries until its
        # respawn budget is exhausted, and the parent must still fail
        # loudly and unlink every segment.
        env = _subprocess_env(**{CRASH_WORKER_ENV_VAR: "1"})
        code = (
            "from repro.campaign import CampaignExecutionError\n"
            "from repro.campaign import run_campaign, table1_spec\n"
            "spec = table1_spec(mean_toffs=(18.0,), replicates=8,\n"
            "                   duration=120.0, legacy_seed=None)\n"
            "try:\n"
            "    run_campaign(spec, seed=7, max_workers=2, engine='batched',\n"
            "                 batch_size=4, shm=True, max_respawns=1)\n"
            "except CampaignExecutionError:\n"
            "    raise SystemExit(86)\n"
            "raise SystemExit(1)\n")
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, cwd=_REPO_ROOT,
            capture_output=True, text=True, timeout=300)
        assert proc.returncode == 86, proc.stderr

    def test_atexit_unlinks_unclosed_session(self, no_new_segments):
        # A process that creates a session and exits without closing it:
        # the owner-side atexit hook must unlink every segment.
        code = (
            "from repro.campaign.shm import ShmSession, StatePlane\n"
            "session = ShmSession(32)\n"
            "session.ensure_plane(0, 8, 41, 3)\n"
            "import sys; sys.stdout.write(session.ring.segment.name)\n")
        proc = subprocess.run([sys.executable, "-c", code],
                              env=_subprocess_env(), cwd=_REPO_ROOT,
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.startswith("repro-")

    def test_resource_tracker_reaps_after_hard_exit(self, no_new_segments):
        # os._exit skips atexit entirely; the resource tracker (a separate
        # surviving process) is the last line of defence and must unlink
        # the leaked segments once its owner is gone.
        code = (
            "import os\n"
            "from repro.campaign.shm import ShmSession\n"
            "session = ShmSession(32)\n"
            "os._exit(0)\n")
        proc = subprocess.run([sys.executable, "-c", code],
                              env=_subprocess_env(), cwd=_REPO_ROOT,
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
