"""Tests of the durable campaign checkpoint store and crash/resume.

The acceptance contract: a campaign interrupted at an *arbitrary* point
and resumed with ``--resume`` produces byte-identical aggregate output to
an uninterrupted run of the same spec — for the compiled and batched
engines and for more than one worker count.  Interruption is exercised
three ways:

* a simulated store holding a partial prefix (rows deleted post hoc);
* the deterministic crash-injection harness (``REPRO_CAMPAIGN_CRASH_AFTER``
  hard-kills the CLI process via ``os._exit`` right after the N-th
  checkpoint commit);
* a genuine ``SIGKILL`` of a running campaign process.
"""

import json
import os
import signal
import sqlite3
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import (CampaignStore, CampaignStoreError, RecoveryStage,
                            RecoveryStateMachine, run_campaign, spec_fingerprint,
                            table1_spec)
from repro.campaign.cli import main as campaign_main
from repro.campaign.store import CRASH_ENV_VAR, CRASH_EXIT_CODE

_REPO_ROOT = Path(__file__).resolve().parents[2]
_SRC = str(_REPO_ROOT / "src")


def _campaign_payload(result):
    """The deterministic (execution-metadata-free) half of a result."""
    return json.dumps(result.to_json()["campaign"], sort_keys=True)


def _truncate_store(path, keep: int) -> None:
    """Rewrite a store so it holds only the first ``keep`` trial rows."""
    conn = sqlite3.connect(path)
    conn.execute("DELETE FROM trials WHERE trial_index >= ?", (keep,))
    conn.execute("UPDATE meta SET value = '0' WHERE key = 'complete'")
    conn.commit()
    conn.close()


def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(CRASH_ENV_VAR, None)
    return env


def _cli_cmd(*args: str):
    return [sys.executable, "-u", "-m", "repro.campaign", *args]


class TestFingerprintAndStateMachine:
    def test_fingerprint_is_stable_and_spec_sensitive(self):
        spec = table1_spec(duration=100.0, replicates=2)
        same = table1_spec(duration=100.0, replicates=2)
        assert spec_fingerprint(spec, 7) == spec_fingerprint(same, 7)
        assert spec_fingerprint(spec, 7) != spec_fingerprint(spec, 8)
        assert (spec_fingerprint(spec, 7)
                != spec_fingerprint(table1_spec(duration=101.0, replicates=2), 7))
        assert (spec_fingerprint(spec, 7)
                != spec_fingerprint(table1_spec(duration=100.0, replicates=3), 7))

    def test_recovery_transitions(self):
        machine = RecoveryStateMachine()
        assert machine.stage is RecoveryStage.FRESH
        machine.advance(RecoveryStage.REPLAYING)
        machine.advance(RecoveryStage.LIVE)
        machine.advance(RecoveryStage.COMPLETE)
        with pytest.raises(CampaignStoreError):
            machine.advance(RecoveryStage.LIVE)

    def test_fresh_can_skip_straight_to_live_or_complete(self):
        RecoveryStateMachine().advance(RecoveryStage.LIVE)
        RecoveryStateMachine().advance(RecoveryStage.COMPLETE)
        replay_only = RecoveryStateMachine()
        replay_only.advance(RecoveryStage.REPLAYING)
        replay_only.advance(RecoveryStage.COMPLETE)

    def test_illegal_transitions_raise(self):
        machine = RecoveryStateMachine()
        machine.advance(RecoveryStage.LIVE)
        with pytest.raises(CampaignStoreError):
            machine.advance(RecoveryStage.REPLAYING)


class TestStoreLifecycle:
    def test_fresh_store_checkpoints_and_completes(self, tmp_path):
        spec = table1_spec(duration=100.0, replicates=2)
        db = tmp_path / "campaign.db"
        baseline = run_campaign(spec, seed=7, max_workers=1)
        stored = run_campaign(spec, seed=7, max_workers=1, store=db)
        assert _campaign_payload(stored) == _campaign_payload(baseline)
        assert stored.replayed_trials == 0
        with CampaignStore(db) as store:
            status = store.status()
        assert status.complete
        assert status.checkpointed == status.total_trials == 8
        assert status.stage is RecoveryStage.COMPLETE
        assert status.fingerprint == spec_fingerprint(spec, 7)

    def test_resuming_a_complete_store_simulates_nothing(self, tmp_path):
        spec = table1_spec(duration=100.0, replicates=1)
        db = tmp_path / "campaign.db"
        first = run_campaign(spec, seed=3, max_workers=1, store=db)
        resumed = run_campaign(spec, seed=3, max_workers=1, store=db,
                               resume=True)
        assert resumed.replayed_trials == resumed.total_trials == 4
        assert _campaign_payload(resumed) == _campaign_payload(first)

    def test_dirty_store_requires_resume(self, tmp_path):
        spec = table1_spec(duration=100.0, replicates=1)
        db = tmp_path / "campaign.db"
        run_campaign(spec, seed=3, max_workers=1, store=db)
        with pytest.raises(CampaignStoreError, match="resume"):
            run_campaign(spec, seed=3, max_workers=1, store=db)

    def test_spec_or_seed_mismatch_is_rejected(self, tmp_path):
        spec = table1_spec(duration=100.0, replicates=1)
        db = tmp_path / "campaign.db"
        run_campaign(spec, seed=3, max_workers=1, store=db)
        with pytest.raises(CampaignStoreError, match="fingerprint"):
            run_campaign(spec, seed=4, max_workers=1, store=db, resume=True)
        other = table1_spec(duration=120.0, replicates=1)
        with pytest.raises(CampaignStoreError, match="fingerprint"):
            run_campaign(other, seed=3, max_workers=1, store=db, resume=True)

    def test_payload_mismatch_is_rejected(self, tmp_path):
        spec = table1_spec(duration=100.0, replicates=1)
        db = tmp_path / "campaign.db"
        run_campaign(spec, seed=3, max_workers=1, store=db)
        with pytest.raises(CampaignStoreError, match="payload"):
            run_campaign(spec, seed=3, max_workers=1, store=db, resume=True,
                         payload="stats")

    def test_resume_on_empty_store_is_a_fresh_start(self, tmp_path):
        spec = table1_spec(duration=100.0, replicates=1)
        db = tmp_path / "campaign.db"
        result = run_campaign(spec, seed=3, max_workers=1, store=db,
                              resume=True)
        assert result.replayed_trials == 0
        assert result.total_trials == 4


class TestPartialPrefixResume:
    """Simulated crash: a store holding an arbitrary partial prefix."""

    @pytest.mark.parametrize("engine,workers,batch_size", [
        ("compiled", 1, None),
        ("compiled", 2, None),
        ("batched", 1, 4),
        ("batched", 2, 2),
    ])
    def test_resume_is_bit_identical(self, tmp_path, engine, workers,
                                     batch_size):
        spec = table1_spec(duration=100.0, replicates=2)
        baseline = run_campaign(spec, seed=7, max_workers=1, engine="compiled")
        base_payload = _campaign_payload(baseline)
        db = tmp_path / f"{engine}-{workers}.db"
        run_campaign(spec, seed=7, max_workers=workers, engine=engine,
                     batch_size=batch_size, store=db)
        _truncate_store(db, keep=3)
        resumed = run_campaign(spec, seed=7, max_workers=workers,
                               engine=engine, batch_size=batch_size,
                               store=db, resume=True)
        assert resumed.replayed_trials == 3
        assert _campaign_payload(resumed) == base_payload
        with CampaignStore(db) as store:
            assert store.status().complete

    def test_resume_at_every_prefix_length(self, tmp_path):
        # The interruption point must not matter: every prefix length,
        # including 0 (crash before the first checkpoint) and total-1,
        # resumes to the same bytes.
        spec = table1_spec(duration=100.0, replicates=1)
        baseline = run_campaign(spec, seed=11, max_workers=1)
        base_payload = _campaign_payload(baseline)
        db = tmp_path / "prefix.db"
        run_campaign(spec, seed=11, max_workers=1, store=db)
        for keep in (0, 1, 3):
            _truncate_store(db, keep=keep)
            resumed = run_campaign(spec, seed=11, max_workers=1, store=db,
                                   resume=True)
            assert resumed.replayed_trials == keep
            assert _campaign_payload(resumed) == base_payload, keep

    def test_stats_payload_round_trips_full_results(self, tmp_path):
        spec = table1_spec(duration=100.0, replicates=1)
        baseline = run_campaign(spec, seed=5, max_workers=1, payload="stats")
        db = tmp_path / "stats.db"
        run_campaign(spec, seed=5, max_workers=1, payload="stats", store=db)
        _truncate_store(db, keep=2)
        resumed = run_campaign(spec, seed=5, max_workers=1, payload="stats",
                               store=db, resume=True)
        assert _campaign_payload(resumed) == _campaign_payload(baseline)
        assert resumed.results is not None and len(resumed.results) == 4
        # Replayed TrialResults come back through pickle with monitor and
        # ledger intact, indistinguishable from live ones.
        assert all(r.monitor is not None and r.ledger is not None
                   for r in resumed.results)
        assert [r.failures for r in resumed.results] == [
            r.failures for r in baseline.results]


class TestProcessKillResume:
    """Real interruption: the campaign process dies mid-run."""

    def _baseline_json(self, tmp_path):
        out = tmp_path / "baseline.json"
        code = campaign_main(["--experiment", "table1", "--quiet",
                              "--duration", "100", "--seed", "7",
                              "--replicates", "2", "--json", str(out)])
        assert code in (0, 1)
        return json.loads(out.read_text())["campaign"]

    def test_crash_injected_cli_run_resumes_bit_identically(self, tmp_path):
        baseline = self._baseline_json(tmp_path)
        db = tmp_path / "crash.db"
        env = _cli_env()
        env[CRASH_ENV_VAR] = "3"
        proc = subprocess.run(
            _cli_cmd("--experiment", "table1", "--quiet", "--duration", "100",
                     "--seed", "7", "--replicates", "2", "--store", str(db)),
            cwd=_REPO_ROOT, env=env, capture_output=True, timeout=300)
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr.decode()
        with CampaignStore(db) as store:
            status = store.status()
        assert not status.complete
        assert 0 < status.checkpointed < status.total_trials == 8

        out = tmp_path / "resumed.json"
        code = campaign_main(["--experiment", "table1", "--quiet",
                              "--duration", "100", "--seed", "7",
                              "--replicates", "2", "--store", str(db),
                              "--resume", "--json", str(out)])
        assert code in (0, 1)
        assert json.loads(out.read_text())["campaign"] == baseline

    def test_sigkilled_cli_run_resumes_bit_identically(self, tmp_path):
        baseline = self._baseline_json(tmp_path)
        db = tmp_path / "sigkill.db"
        proc = subprocess.Popen(
            _cli_cmd("--experiment", "table1", "--duration", "100",
                     "--seed", "7", "--replicates", "2", "--store", str(db)),
            cwd=_REPO_ROOT, env=_cli_env(), stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, text=True)
        # Progress lines print only after the batch behind them has been
        # durably committed; kill as soon as two trials have been reported.
        seen = 0
        for line in proc.stdout:
            if "replicate" in line:
                seen += 1
                if seen >= 2:
                    break
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)
        proc.stdout.close()

        with CampaignStore(db) as store:
            status = store.status()
        assert status is not None and status.checkpointed >= 2

        out = tmp_path / "resumed.json"
        code = campaign_main(["--experiment", "table1", "--quiet",
                              "--duration", "100", "--seed", "7",
                              "--replicates", "2", "--store", str(db),
                              "--resume", "--json", str(out)])
        assert code in (0, 1)
        assert json.loads(out.read_text())["campaign"] == baseline


class TestStoreCLI:
    def test_status_reports_progress(self, tmp_path, capsys):
        db = tmp_path / "campaign.db"
        code = campaign_main(["--experiment", "table1", "--quiet",
                              "--duration", "100", "--seed", "7",
                              "--store", str(db)])
        assert code in (0, 1)
        assert campaign_main(["--store", str(db), "--status"]) == 0
        stdout = capsys.readouterr().out
        assert "complete" in stdout
        assert "table1" in stdout

    def test_usage_errors(self, tmp_path, capsys):
        assert campaign_main(["--resume"]) == 2
        assert campaign_main(["--status"]) == 2
        missing = tmp_path / "nope.db"
        assert campaign_main(["--store", str(missing), "--status"]) == 2
        capsys.readouterr()

    def test_store_mismatch_exits_with_usage_error(self, tmp_path, capsys):
        db = tmp_path / "campaign.db"
        code = campaign_main(["--experiment", "table1", "--quiet",
                              "--duration", "100", "--seed", "7",
                              "--store", str(db)])
        assert code in (0, 1)
        code = campaign_main(["--experiment", "table1", "--quiet",
                              "--duration", "100", "--seed", "8",
                              "--store", str(db), "--resume"])
        assert code == 2
        assert "fingerprint" in capsys.readouterr().err
