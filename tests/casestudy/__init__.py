"""Test package."""
