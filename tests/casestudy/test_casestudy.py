"""Tests for the laser-tracheotomy case-study components and trials."""

import pytest

from repro.casestudy import (CaseStudyConfig, LASER, PATIENT, SPO2,
                             SUPERVISOR, VENTILATOR, build_case_study, build_patient,
                             build_standalone_ventilator, build_ventilator,
                             build_laser, lease_ledger_from_trace, run_trial,
                             time_to_threshold, ventilating_locations,
                             CYLINDER_HEIGHT, CYLINDER_TOP)
from repro.casestudy.config import PatientModel, SurgeonModel
from repro.casestudy.surgeon import ScriptedSurgeon, SurgeonProcess
from repro.core import laser_tracheotomy_configuration
from repro.core.leases import LeaseOutcome
from repro.hybrid import HybridSystem, SimulationEngine
from repro.wireless import PerfectChannel, ScriptedChannel

CONFIG = CaseStudyConfig()
PATTERN = laser_tracheotomy_configuration()


class TestVentilator:
    def test_standalone_trajectory_is_triangle_wave(self):
        ventilator = build_standalone_ventilator()
        system = HybridSystem()
        system.add(ventilator)
        engine = SimulationEngine(system,
                                  record_variables=[(ventilator.name, CYLINDER_HEIGHT)],
                                  sample_interval=0.1)
        trace = engine.run(12.0)
        _, values = trace.series(ventilator.name, CYLINDER_HEIGHT)
        assert max(values) <= CYLINDER_TOP + 1e-9
        assert min(values) >= -1e-9
        # Full stroke takes 3 s each way -> 4 turnarounds in 12 s.
        assert len(trace.transitions_of(ventilator.name)) == 4

    def test_invalid_initial_height_rejected(self):
        with pytest.raises(ValueError):
            build_standalone_ventilator(initial_height=1.0)

    def test_elaborated_ventilator_pumps_only_in_fallback(self):
        ventilator = build_ventilator(PATTERN)
        assert ventilating_locations(ventilator) == {"PumpOut", "PumpIn"}
        # Outside the elaborated Fall-Back the cylinder must be frozen.
        rates = ventilator.location("xi1.Risky Core").flow.rates(
            ventilator.initial_valuation)
        assert rates.get(CYLINDER_HEIGHT, 0.0) == 0.0
        # Inside the elaboration the clock and the cylinder both flow.
        pump_rates = ventilator.location("PumpOut").flow.rates(ventilator.initial_valuation)
        assert pump_rates["c_xi1"] == pytest.approx(1.0)
        assert pump_rates[CYLINDER_HEIGHT] == pytest.approx(-0.1)

    def test_baseline_ventilator_has_no_lease(self):
        ventilator = build_ventilator(PATTERN, lease_enabled=False)
        assert all(e.reason != "lease_expiry" for e in ventilator.edges)


class TestPatientAndSurgeon:
    def test_spo2_desaturates_without_ventilation(self):
        model = PatientModel()
        patient = build_patient(model)
        patient.initial_valuation = {SPO2: model.initial_spo2, "ventilated": 0.0}
        system = HybridSystem()
        system.add(patient)
        engine = SimulationEngine(system, dt_max=0.1)
        engine.run(30.0)
        final = engine.state.value_of(PATIENT, SPO2)
        assert final < model.initial_spo2
        assert final == pytest.approx(model.initial_spo2 - 30.0 * model.desaturation_rate,
                                      abs=0.5)

    def test_time_to_threshold(self):
        model = PatientModel()
        assert time_to_threshold(model) == pytest.approx(
            (model.spo2_baseline - model.spo2_threshold) / model.desaturation_rate)
        assert time_to_threshold(model, from_spo2=model.spo2_threshold) == 0.0

    def test_patient_model_validation(self):
        with pytest.raises(ValueError):
            PatientModel(spo2_threshold=60.0)
        with pytest.raises(ValueError):
            SurgeonModel(mean_ton=0.0)

    def test_scripted_surgeon_counts_actions(self):
        # The request must come after the supervisor's T_fb_min = 13 s dwell,
        # otherwise it is ignored and no emission happens.
        surgeon = ScriptedSurgeon(requests_at=[14.0], cancels_at=[40.0])
        result = run_trial(CONFIG, with_lease=True, seed=1, duration=80.0,
                           channel=PerfectChannel(), surgeon=surgeon)
        assert surgeon.requests_issued == 1
        assert surgeon.cancels_issued == 1
        assert result.laser_emissions == 1

    def test_random_surgeon_respects_fallback_gating(self):
        surgeon = SurgeonProcess(SurgeonModel(mean_ton=5.0, mean_toff=5.0),
                                 laser_name=LASER, seed=4)
        result = run_trial(CONFIG, with_lease=True, seed=4, duration=300.0,
                           channel=PerfectChannel(), surgeon=surgeon, keep_trace=True)
        # Requests are only issued while the laser dwells in Fall-Back, so the
        # number of "Requesting" entries equals the number of issued requests.
        requesting_entries = result.trace.count_entries(LASER, "xi2.Requesting")
        assert requesting_entries == surgeon.requests_issued > 0


class TestTrials:
    def test_lossless_trial_is_safe_and_emits(self):
        result = run_trial(CONFIG, with_lease=True, seed=2, duration=300.0,
                           channel=PerfectChannel())
        assert result.failures == 0
        assert result.laser_emissions > 0
        assert result.max_pause_duration <= CONFIG.dwelling_bound
        assert result.observed_loss_ratio == 0.0

    def test_with_lease_trial_under_interference_is_safe(self):
        result = run_trial(CONFIG, with_lease=True, seed=5, duration=600.0)
        assert result.failures == 0
        assert result.max_pause_duration <= CONFIG.dwelling_bound + 1e-6

    def test_without_lease_trial_under_blackout_fails(self):
        # A long blackout right after the first emission starts: the no-lease
        # design cannot stop the ventilator pause in time.
        surgeon = ScriptedSurgeon(requests_at=[14.0], cancels_at=[40.0])
        channel = ScriptedChannel([(20.0, 400.0)])
        result = run_trial(CONFIG, with_lease=False, seed=3, duration=400.0,
                           channel=channel, surgeon=surgeon)
        assert result.failures > 0
        assert result.max_pause_duration > CONFIG.dwelling_bound

    def test_with_lease_trial_under_same_blackout_is_safe(self):
        # The surgeon never cancels, so only the lease can stop the emission.
        surgeon = ScriptedSurgeon(requests_at=[14.0])
        channel = ScriptedChannel([(20.0, 400.0)])
        result = run_trial(CONFIG, with_lease=True, seed=3, duration=400.0,
                           channel=channel, surgeon=surgeon)
        assert result.failures == 0
        assert result.evt_to_stop >= 1  # the lease had to stop the laser

    def test_lease_ledger_reconstruction(self):
        surgeon = ScriptedSurgeon(requests_at=[14.0], cancels_at=[40.0])
        result = run_trial(CONFIG, with_lease=True, seed=1, duration=120.0,
                           channel=PerfectChannel(), surgeon=surgeon, keep_trace=True)
        ledger = lease_ledger_from_trace(result.trace, CONFIG)
        laser_leases = ledger.of(LASER)
        vent_leases = ledger.of(VENTILATOR)
        assert len(laser_leases) == 1 and len(vent_leases) == 1
        assert laser_leases[0].outcome is LeaseOutcome.COMPLETED
        assert ledger.overruns() == 0

    def test_supervisor_aborts_on_low_spo2(self):
        # Make the patient desaturate very fast so the supervisor must abort
        # the round while the laser is still emitting.
        fast_desat = CaseStudyConfig(patient=PatientModel(desaturation_rate=0.8))
        surgeon = ScriptedSurgeon(requests_at=[14.0])
        result = run_trial(fast_desat, with_lease=True, seed=1, duration=120.0,
                           channel=PerfectChannel(), surgeon=surgeon, keep_trace=True)
        assert result.supervisor_aborts >= 1
        assert result.failures == 0
        aborted = result.trace.transitions_of(LASER, reason="abort")
        assert aborted, "the laser should have been aborted by the supervisor"

    def test_case_study_system_wiring(self):
        case = build_case_study(CONFIG, with_lease=True, seed=0)
        assert set(a.name for a in case.system) == {SUPERVISOR, VENTILATOR, LASER, PATIENT}
        assert case.network.base_station == SUPERVISOR
        assert set(case.network.remote_entities) == {VENTILATOR, LASER}
        assert case.system.dangling_receive_roots() == {
            case.surgeon._cmd_request, case.surgeon._cmd_cancel}
