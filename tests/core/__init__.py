"""Test package."""
