"""Tests for Theorem 1's conditions c1-c7 and configuration synthesis."""

from dataclasses import replace

import pytest

from repro.core import (EntityTiming, PatternConfiguration, check_conditions,
                        laser_tracheotomy_configuration, synthesize_configuration,
                        theoretical_guarantees)
from repro.core.constraints import assert_valid, guaranteed_dwelling_bound
from repro.errors import ConfigurationError, ConstraintViolation


class TestPaperConfiguration:
    def test_paper_values_satisfy_all_conditions(self):
        report = check_conditions(laser_tracheotomy_configuration())
        assert report.satisfied, report.summary()

    def test_t_ls1_and_dwelling_bound(self):
        config = laser_tracheotomy_configuration()
        assert config.t_ls1_max == pytest.approx(44.0)     # 3 + 35 + 6
        assert config.dwelling_bound == pytest.approx(47.0)  # + T_wait_max
        assert guaranteed_dwelling_bound(config) == pytest.approx(47.0)
        # The case study's 1-minute trial bound is looser than Theorem 1's.
        assert config.dwelling_bound < 60.0

    def test_theoretical_guarantees_cover_safeguards(self):
        config = laser_tracheotomy_configuration()
        guarantees = theoretical_guarantees(config)
        assert guarantees["enter_margin[1->2]"] == pytest.approx(7.0)
        assert guarantees["enter_margin[1->2]"] >= 3.0
        assert guarantees["exit_margin[2->1]"] == pytest.approx(6.0)
        assert guarantees["exit_margin[2->1]"] >= 1.5

    def test_as_dict_exposes_every_parameter(self):
        flat = laser_tracheotomy_configuration().as_dict()
        assert flat["N"] == 2
        assert flat["T_run_max[1]"] == pytest.approx(35.0)
        assert flat["T_min_risky[1->2]"] == pytest.approx(3.0)

    def test_to_rule_set(self):
        config = laser_tracheotomy_configuration()
        rules = config.to_rule_set(["vent", "laser"])
        assert rules.entities == ("vent", "laser")
        assert rules.dwelling_bound("vent") == pytest.approx(config.dwelling_bound)


class TestIndividualConditions:
    def test_c1_rejects_non_positive_constants(self):
        config = laser_tracheotomy_configuration()
        broken = replace(config, t_wait_max=0.0)
        report = check_conditions(broken)
        assert not report.result("c1").satisfied

    def test_c2_violation(self):
        config = laser_tracheotomy_configuration()
        broken = replace(config, t_wait_max=30.0)
        assert not check_conditions(broken).result("c2").satisfied

    def test_c3_violation_lower_bound(self):
        config = laser_tracheotomy_configuration()
        broken = replace(config, t_req_max=2.0)  # below (N-1)*T_wait = 3
        assert not check_conditions(broken).result("c3").satisfied

    def test_c3_violation_upper_bound(self):
        config = laser_tracheotomy_configuration()
        broken = replace(config, t_req_max=100.0)  # above T_LS1 = 44
        assert not check_conditions(broken).result("c3").satisfied

    def test_c4_violation(self):
        config = laser_tracheotomy_configuration()
        broken = config.with_timing(2, EntityTiming(10.0, 40.0, 6.0))
        assert not check_conditions(broken).result("c4").satisfied

    def test_c5_violation_paper_scenario(self):
        # The paper's third scenario: T_enter,2 = T_enter,1 breaks c5.
        config = laser_tracheotomy_configuration()
        broken = config.with_timing(2, EntityTiming(3.0, 20.0, 1.5))
        report = check_conditions(broken)
        assert not report.result("c5").satisfied

    def test_c6_violation(self):
        config = laser_tracheotomy_configuration()
        broken = config.with_timing(1, EntityTiming(3.0, 20.0, 6.0))
        assert not check_conditions(broken).result("c6").satisfied

    def test_c7_violation(self):
        config = laser_tracheotomy_configuration()
        broken = config.with_timing(1, EntityTiming(3.0, 35.0, 1.0))
        assert not check_conditions(broken).result("c7").satisfied

    def test_assert_valid_raises_named_condition(self):
        config = laser_tracheotomy_configuration()
        broken = config.with_timing(1, EntityTiming(3.0, 35.0, 1.0))
        with pytest.raises(ConstraintViolation) as excinfo:
            assert_valid(broken)
        assert excinfo.value.condition == "c7"


class TestSynthesis:
    @pytest.mark.parametrize("n", [2, 3, 4, 6])
    def test_synthesized_configurations_are_valid(self, n):
        config = synthesize_configuration(
            n_entities=n,
            enter_safeguards=[2.0] * (n - 1),
            exit_safeguards=[1.0] * (n - 1))
        assert config.n_entities == n
        assert check_conditions(config).satisfied

    def test_synthesis_respects_safeguards(self):
        config = synthesize_configuration(
            n_entities=3, enter_safeguards=[5.0, 2.0], exit_safeguards=[4.0, 0.5])
        assert config.timing(1).t_exit > 4.0
        assert config.timing(2).t_enter_max - config.timing(1).t_enter_max > 5.0

    def test_synthesis_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            synthesize_configuration(n_entities=1, enter_safeguards=[], exit_safeguards=[])
        with pytest.raises(ConfigurationError):
            synthesize_configuration(n_entities=3, enter_safeguards=[1.0],
                                     exit_safeguards=[1.0, 1.0])
        with pytest.raises(ConfigurationError):
            synthesize_configuration(n_entities=2, enter_safeguards=[1.0],
                                     exit_safeguards=[1.0], margin=0.0)

    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            PatternConfiguration(t_fallback_min=1.0, t_wait_max=1.0, t_req_max=1.0,
                                 entity_timing=[EntityTiming(1.0, 1.0, 1.0)],
                                 enter_safeguards=[], exit_safeguards=[])

    def test_timing_accessors(self):
        config = laser_tracheotomy_configuration()
        assert config.timing(1).t_run_max == pytest.approx(35.0)
        assert config.initializer_timing.t_run_max == pytest.approx(20.0)
        with pytest.raises(ConfigurationError):
            config.timing(3)

    def test_initializer_horizon(self):
        config = laser_tracheotomy_configuration()
        assert config.initializer_horizon() == pytest.approx(31.5)
