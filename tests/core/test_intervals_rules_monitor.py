"""Unit tests for the interval algebra, PTE rule specs and the trace monitor."""

import pytest

from repro.core import (Interval, IntervalSet, PTEMonitor, PTEOrderSpec, PTERuleSet,
                        laser_tracheotomy_rules, uniform_rules)
from repro.core.rules import EmbeddingProperty, RuleKind
from repro.errors import ConfigurationError, SafetyViolationError
from repro.hybrid.trace import Trace, TransitionRecord


class TestIntervals:
    def test_normalization_merges_overlaps(self):
        merged = IntervalSet([(0.0, 2.0), (1.5, 4.0), (6.0, 7.0)])
        assert [ (iv.start, iv.end) for iv in merged ] == [(0.0, 4.0), (6.0, 7.0)]

    def test_max_duration(self):
        intervals = IntervalSet([(0.0, 2.0), (5.0, 12.0)])
        assert intervals.max_duration == pytest.approx(7.0)
        assert intervals.total_duration == pytest.approx(9.0)

    def test_covers(self):
        intervals = IntervalSet([(0.0, 10.0)])
        assert intervals.covers(Interval(2.0, 8.0))
        assert not intervals.covers(Interval(8.0, 12.0))

    def test_abutting_intervals_merge_for_coverage(self):
        intervals = IntervalSet([(0.0, 5.0), (5.0, 10.0)])
        assert intervals.covers(Interval(3.0, 8.0))

    def test_intersect_and_union(self):
        a = IntervalSet([(0.0, 5.0)])
        b = IntervalSet([(3.0, 8.0)])
        assert [(iv.start, iv.end) for iv in a.intersect(b)] == [(3.0, 5.0)]
        assert [(iv.start, iv.end) for iv in a.union(b)] == [(0.0, 8.0)]

    def test_complement_within(self):
        a = IntervalSet([(2.0, 4.0), (6.0, 8.0)])
        gaps = a.complement_within(Interval(0.0, 10.0))
        assert [(iv.start, iv.end) for iv in gaps] == [(0.0, 2.0), (4.0, 6.0), (8.0, 10.0)]

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Interval(5.0, 1.0)


class TestRuleSpecs:
    def test_laser_tracheotomy_rules(self):
        rules = laser_tracheotomy_rules()
        assert rules.entities == ("ventilator", "laser_scalpel")
        pair = rules.order.consecutive_pairs()[0]
        assert pair.enter_safeguard == pytest.approx(3.0)
        assert pair.exit_safeguard == pytest.approx(1.5)
        assert rules.dwelling_bound("ventilator") == pytest.approx(60.0)

    def test_order_requires_two_entities(self):
        with pytest.raises(ConfigurationError):
            PTEOrderSpec(["only"], [], [])

    def test_order_requires_matching_safeguards(self):
        with pytest.raises(ConfigurationError):
            PTEOrderSpec(["a", "b", "c"], [1.0], [1.0, 1.0])

    def test_uniform_rules(self):
        rules = uniform_rules(["a", "b", "c"], enter_safeguard=2.0, exit_safeguard=1.0,
                              dwelling_bound=50.0)
        assert len(rules.order.consecutive_pairs()) == 2
        assert rules.dwelling_bound("c") == pytest.approx(50.0)

    def test_non_consecutive_pair_lookup_fails(self):
        rules = uniform_rules(["a", "b", "c"], enter_safeguard=2.0, exit_safeguard=1.0,
                              dwelling_bound=50.0)
        with pytest.raises(ConfigurationError):
            rules.order.pair("a", "c")


def trace_with_intervals(inner_intervals, outer_intervals, horizon=100.0) -> Trace:
    """Build a synthetic trace with prescribed risky intervals for two entities."""
    trace = Trace({"inner": {"inner.R"}, "outer": {"outer.R"}})
    trace.register_automaton("inner", "inner.S", {"inner.R"})
    trace.register_automaton("outer", "outer.S", {"outer.R"})
    for name, intervals in (("inner", inner_intervals), ("outer", outer_intervals)):
        for start, end in intervals:
            trace.record_transition(TransitionRecord(start, name, f"{name}.S", f"{name}.R"))
            trace.record_transition(TransitionRecord(end, name, f"{name}.R", f"{name}.S"))
    trace.close(horizon)
    return trace


def two_entity_rules(enter=3.0, exit_=1.5, bound=60.0) -> PTERuleSet:
    return uniform_rules(["inner", "outer"], enter_safeguard=enter,
                         exit_safeguard=exit_, dwelling_bound=bound)


class TestMonitor:
    def test_compliant_trace_is_safe(self):
        trace = trace_with_intervals([(10.0, 50.0)], [(15.0, 45.0)])
        report = PTEMonitor(two_entity_rules()).check(trace)
        assert report.safe
        assert report.failure_count == 0
        assert report.max_dwell["inner"] == pytest.approx(40.0)
        measurement = report.measurements[0]
        assert measurement.enter_margin == pytest.approx(5.0)
        assert measurement.exit_margin == pytest.approx(5.0)

    def test_rule1_violation_detected(self):
        trace = trace_with_intervals([(10.0, 90.0)], [], horizon=100.0)
        report = PTEMonitor(two_entity_rules(bound=60.0)).check(trace)
        violations = report.violations_of(RuleKind.BOUNDED_DWELLING)
        assert len(violations) == 1
        assert violations[0].entity == "inner"
        assert violations[0].measured == pytest.approx(80.0)

    def test_p2_containment_violation(self):
        # The outer entity is risky while the inner one is not.
        trace = trace_with_intervals([(10.0, 30.0)], [(25.0, 40.0)])
        report = PTEMonitor(two_entity_rules()).check(trace)
        assert not report.safe
        props = {v.property for v in report.violations_of(RuleKind.TEMPORAL_EMBEDDING)}
        assert EmbeddingProperty.P2_CONTAINMENT in props

    def test_p1_enter_safeguard_violation(self):
        # Outer enters only 1 s after inner (requirement: 3 s).
        trace = trace_with_intervals([(10.0, 50.0)], [(11.0, 40.0)])
        report = PTEMonitor(two_entity_rules(enter=3.0)).check(trace)
        props = {v.property for v in report.violations}
        assert EmbeddingProperty.P1_ENTER_SAFEGUARD in props

    def test_p3_exit_safeguard_violation(self):
        # Inner exits only 0.5 s after outer (requirement: 1.5 s).
        trace = trace_with_intervals([(10.0, 40.5)], [(15.0, 40.0)])
        report = PTEMonitor(two_entity_rules(exit_=1.5)).check(trace)
        props = {v.property for v in report.violations}
        assert EmbeddingProperty.P3_EXIT_SAFEGUARD in props

    def test_exit_safeguard_clipped_at_horizon(self):
        # The trace ends right after the outer entity exits; the exit window
        # cannot be observed so no violation should be reported.
        trace = trace_with_intervals([(10.0, 50.0)], [(15.0, 49.9)], horizon=50.0)
        report = PTEMonitor(two_entity_rules()).check(trace)
        assert all(v.property is not EmbeddingProperty.P3_EXIT_SAFEGUARD
                   for v in report.violations)

    def test_failure_count_groups_by_episode(self):
        # One outer episode violating both p1 and p3 counts as one failure.
        trace = trace_with_intervals([(10.0, 41.0)], [(11.0, 40.0)])
        report = PTEMonitor(two_entity_rules()).check(trace)
        assert len(report.violations) >= 2
        assert report.failure_count == 1

    def test_strict_mode_raises(self):
        trace = trace_with_intervals([(10.0, 30.0)], [(25.0, 40.0)])
        with pytest.raises(SafetyViolationError):
            PTEMonitor(two_entity_rules()).check(trace, strict=True)

    def test_entity_name_mapping(self):
        trace = trace_with_intervals([(10.0, 50.0)], [(15.0, 45.0)])
        rules = uniform_rules(["vent", "laser"], enter_safeguard=3.0, exit_safeguard=1.5,
                              dwelling_bound=60.0)
        report = PTEMonitor(rules, {"vent": "inner", "laser": "outer"}).check(trace)
        assert report.safe

    def test_three_entity_chain(self):
        rules = uniform_rules(["a", "b", "c"], enter_safeguard=2.0, exit_safeguard=1.0,
                              dwelling_bound=100.0)
        trace = Trace()
        for name in ("a", "b", "c"):
            trace.register_automaton(name, f"{name}.S", {f"{name}.R"})
        schedule = {"a": (10.0, 60.0), "b": (14.0, 55.0), "c": (18.0, 50.0)}
        for name, (start, end) in schedule.items():
            trace.record_transition(TransitionRecord(start, name, f"{name}.S", f"{name}.R"))
            trace.record_transition(TransitionRecord(end, name, f"{name}.R", f"{name}.S"))
        trace.close(80.0)
        report = PTEMonitor(rules).check(trace)
        assert report.safe
        assert len(report.measurements) == 2
