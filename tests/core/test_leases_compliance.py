"""Tests for lease bookkeeping and Theorem 2 compliance checking."""

import pytest

from repro.core import (ElaborationClaim, check_compliance, laser_tracheotomy_configuration)
from repro.core.leases import Lease, LeaseLedger, LeaseOutcome
from repro.core.pattern.participant import build_participant
from repro.core.pattern.initializer import build_initializer
from repro.core.pattern.supervisor import build_supervisor
from repro.core.pattern.roles import FALL_BACK, qualified
from repro.casestudy.ventilator import build_standalone_ventilator, build_ventilator
from repro.hybrid.elaboration import elaborate

CONFIG = laser_tracheotomy_configuration()


class TestLeases:
    def test_lease_lifecycle(self):
        ledger = LeaseLedger()
        ledger.open("vent", granted_at=10.0, duration=35.0)
        lease = ledger.close("vent", LeaseOutcome.EXPIRED, released_at=45.0)
        assert lease.expires_at == pytest.approx(45.0)
        assert lease.held_for == pytest.approx(35.0)
        assert not lease.overran
        assert ledger.expirations("vent") == 1

    def test_overrun_detection(self):
        lease = Lease("laser", granted_at=0.0, duration=20.0)
        closed = lease.closed(LeaseOutcome.COMPLETED, released_at=50.0)
        assert closed.overran

    def test_close_without_open_raises(self):
        with pytest.raises(ValueError):
            LeaseLedger().close("ghost", LeaseOutcome.COMPLETED, 1.0)

    def test_counts_by_outcome(self):
        ledger = LeaseLedger()
        ledger.open("vent", 0.0, 35.0)
        ledger.close("vent", LeaseOutcome.COMPLETED, 20.0)
        ledger.open("vent", 100.0, 35.0)
        ledger.close("vent", LeaseOutcome.ABORTED, 120.0)
        assert ledger.count("vent", LeaseOutcome.COMPLETED) == 1
        assert ledger.count("vent", LeaseOutcome.ABORTED) == 1
        assert ledger.overruns() == 0
        assert len(ledger.all_leases()) == 2


class TestTheorem2Compliance:
    def test_case_study_ventilator_is_compliant(self):
        pattern = build_participant(CONFIG, 1, entity_id="xi1", name="ventilator")
        child = build_standalone_ventilator()
        candidate = build_ventilator(CONFIG, name="ventilator")
        claims = [
            ElaborationClaim(pattern, [qualified("xi1", FALL_BACK)], [child], candidate),
            ElaborationClaim(build_initializer(CONFIG, entity_id="xi2", name="laser"),
                             [], [], build_initializer(CONFIG, entity_id="xi2", name="laser")),
            ElaborationClaim(build_supervisor(CONFIG, entity_id="xi0", name="supervisor"),
                             [], [],
                             build_supervisor(CONFIG, entity_id="xi0", name="supervisor")),
        ]
        report = check_compliance(claims, CONFIG)
        assert report.compliant, report.summary()

    def test_tampered_design_is_flagged(self):
        pattern = build_participant(CONFIG, 1, entity_id="xi1", name="ventilator")
        child = build_standalone_ventilator()
        tampered = build_ventilator(CONFIG, name="ventilator")
        # Remove the lease-expiry edge: the design no longer elaborates the pattern.
        tampered.edges = [e for e in tampered.edges if e.reason != "lease_expiry"]
        claim = ElaborationClaim(pattern, [qualified("xi1", FALL_BACK)], [child], tampered)
        report = check_compliance([claim], CONFIG)
        assert not report.compliant
        assert any("does not elaborate" in problem for problem in report.problems)

    def test_invalid_configuration_blocks_compliance(self):
        from dataclasses import replace

        pattern = build_participant(CONFIG, 1, entity_id="xi1", name="ventilator")
        candidate = build_participant(CONFIG, 1, entity_id="xi1", name="ventilator")
        claim = ElaborationClaim(pattern, [], [], candidate)
        broken_config = replace(CONFIG, t_wait_max=30.0)  # violates c2
        report = check_compliance([claim], broken_config)
        assert not report.compliant

    def test_non_simple_child_is_flagged(self):
        from repro.hybrid import HybridAutomaton, Location, var_ge

        pattern = build_participant(CONFIG, 1, entity_id="xi1", name="ventilator")
        bad_child = HybridAutomaton("bad", variables=["y"])
        bad_child.add_location(Location("bad.A", invariant=var_ge("y", 0.0)))
        bad_child.add_location(Location("bad.B"))
        bad_child.initial_location = "bad.A"
        claim = ElaborationClaim(pattern, [qualified("xi1", FALL_BACK)], [bad_child],
                                 build_ventilator(CONFIG, name="ventilator"))
        report = check_compliance([claim], CONFIG)
        assert not report.compliant
        assert any("not simple" in problem for problem in report.problems)
