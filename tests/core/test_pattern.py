"""Tests for the lease design-pattern automata: structure and dynamics."""

import pytest

from repro.core import (build_baseline_system, build_pattern_system, check_trace,
                        laser_tracheotomy_configuration, strip_lease, has_lease,
                        synthesize_configuration)
from repro.core.pattern import events
from repro.core.pattern.roles import (ENTERING, EXITING_1, FALL_BACK,
                                      RISKY_CORE, qualified)
from repro.errors import ConfigurationError
from repro.hybrid import CallbackProcess, SimulationEngine
from repro.hybrid.simulate.engine import Network


CONFIG = laser_tracheotomy_configuration()


def run_round(pattern, *, request_at=14.0, cancel_at=None, horizon=120.0,
              network=None, seed=0):
    """Drive one coordination round of a pattern system with scripted commands."""
    commands = [(request_at, lambda e: e.inject_event(pattern.vocabulary.command_request))]
    if cancel_at is not None:
        commands.append(
            (cancel_at, lambda e: e.inject_event(pattern.vocabulary.command_cancel)))
    process = CallbackProcess(commands)
    engine = SimulationEngine(pattern.system, processes=[process], network=network,
                              seed=seed)
    return engine.run(horizon)


class DropRoots(Network):
    """Network that drops every lossy delivery of the configured roots."""

    def __init__(self, roots):
        self.roots = set(roots)

    def attempt_delivery(self, sender, receiver, root, now):
        return root not in self.roots


class TestStructure:
    def test_role_assignment(self):
        pattern = build_pattern_system(CONFIG)
        assert pattern.supervisor.metadata["role"] == "supervisor"
        assert pattern.initializer.metadata["role"] == "initializer"
        assert all(p.metadata["role"] == "participant" for p in pattern.participants)

    def test_remote_risky_partitions(self):
        pattern = build_pattern_system(CONFIG)
        for index in (1, 2):
            automaton = pattern.automaton_for(index)
            expected = {qualified(f"xi{index}", RISKY_CORE),
                        qualified(f"xi{index}", EXITING_1)}
            assert automaton.risky_locations == expected

    def test_supervisor_has_no_risky_locations(self):
        # The paper does not partition xi0's locations into safe/risky.
        pattern = build_pattern_system(CONFIG)
        assert pattern.supervisor.risky_locations == set()

    def test_entity_names_must_be_distinct(self):
        with pytest.raises(ConfigurationError):
            build_pattern_system(CONFIG, entity_names=["same", "same"])

    def test_wrong_name_count_rejected(self):
        with pytest.raises(ConfigurationError):
            build_pattern_system(CONFIG, entity_names=["only-one"])

    def test_event_vocabulary_consistency(self):
        pattern = build_pattern_system(CONFIG)
        vocabulary = pattern.vocabulary
        assert vocabulary.request == events.request(2)
        emitted = pattern.initializer.emitted_roots()
        assert vocabulary.request in emitted
        assert vocabulary.exited(2) in emitted
        received = pattern.supervisor.received_roots()
        assert vocabulary.request in received
        assert vocabulary.lease_approve(1) in received

    def test_baseline_strips_lease_edges(self):
        baseline = build_baseline_system(CONFIG)
        assert not has_lease(baseline.initializer)
        assert not has_lease(baseline.participants[0])
        leased = build_pattern_system(CONFIG)
        assert has_lease(leased.initializer)
        stripped = strip_lease(leased.initializer)
        assert not has_lease(stripped)
        assert len(stripped.edges) == len(leased.initializer.edges) - 1

    def test_network_matches_topology(self):
        pattern = build_pattern_system(CONFIG, entity_names=["vent", "laser"],
                                       supervisor_name="base")
        network = pattern.build_network()
        assert network.base_station == "base"
        assert network.remote_entities == ["vent", "laser"]


class TestNominalRound:
    def test_full_round_is_pte_safe(self):
        pattern = build_pattern_system(CONFIG)
        trace = run_round(pattern, cancel_at=40.0)
        report = check_trace(trace, pattern.rules)
        assert report.safe
        assert report.risky_episodes[pattern.initializer_name] == 1

    def test_enter_and_exit_margins_match_theory(self):
        pattern = build_pattern_system(CONFIG)
        trace = run_round(pattern, cancel_at=40.0)
        report = check_trace(trace, pattern.rules)
        measurement = report.measurements[0]
        # Theorem 1: enter margin = T_enter,2 - T_enter,1 = 7 s; exit margin = T_exit,1 = 6 s.
        assert measurement.enter_margin == pytest.approx(7.0, abs=1e-6)
        assert measurement.exit_margin == pytest.approx(6.0, abs=1e-6)

    def test_lease_expiry_without_any_cancel(self):
        # Nobody ever cancels: the initializer's lease must expire on its own
        # and everything resets; dwell bound of Theorem 1 must hold.
        pattern = build_pattern_system(CONFIG)
        trace = run_round(pattern, cancel_at=None, horizon=150.0)
        stops = trace.transitions_of(pattern.initializer_name, reason="lease_expiry")
        assert len(stops) == 1
        report = check_trace(trace, pattern.rules)
        assert report.safe
        assert max(report.max_dwell.values()) <= CONFIG.dwelling_bound + 1e-6

    def test_supervisor_returns_to_fallback(self):
        pattern = build_pattern_system(CONFIG)
        trace = run_round(pattern, cancel_at=40.0, horizon=150.0)
        assert trace.location_at(pattern.supervisor_name, 149.0) == qualified("xi0", FALL_BACK)

    def test_request_before_min_fallback_dwell_is_ignored(self):
        pattern = build_pattern_system(CONFIG)
        trace = run_round(pattern, request_at=5.0, horizon=40.0)  # < T_fb_min = 13
        assert trace.count_entries(pattern.initializer_name,
                                   qualified("xi2", ENTERING)) == 0
        # The initializer's request times out and it returns to Fall-Back.
        timeouts = trace.transitions_of(pattern.initializer_name, reason="request_timeout")
        assert len(timeouts) == 1

    def test_three_entity_round_is_pte_safe(self):
        config = synthesize_configuration(n_entities=3, enter_safeguards=[2.0, 2.0],
                                          exit_safeguards=[1.0, 1.0],
                                          t_fallback_min=5.0)
        pattern = build_pattern_system(config)
        trace = run_round(pattern, request_at=6.0, horizon=200.0)
        report = check_trace(trace, pattern.rules)
        assert report.safe
        # All three remote entities entered their risky cores in PTE order.
        entries = [trace.transitions_of(name, target=qualified(f"xi{i}", RISKY_CORE))[0].time
                   for i, name in enumerate(pattern.remote_names, start=1)]
        assert entries == sorted(entries)


class TestRoundsUnderLoss:
    @pytest.mark.parametrize("lost_root_fn", [
        lambda v: v.approve,                 # approval to the initializer lost
        lambda v: v.lease_request(1),        # lease offer to the participant lost
        lambda v: v.lease_approve(1),        # participant approval lost
        lambda v: v.cancel(1),               # cancel to the participant lost
        lambda v: v.exited(2),               # initializer exit confirmation lost
        lambda v: v.request_cancel,          # initializer cancel notification lost
    ])
    def test_single_event_type_loss_never_violates_pte(self, lost_root_fn):
        pattern = build_pattern_system(CONFIG)
        network = DropRoots({lost_root_fn(pattern.vocabulary)})
        trace = run_round(pattern, cancel_at=40.0, horizon=200.0, network=network)
        report = check_trace(trace, pattern.rules)
        assert report.safe, report.violations

    def test_total_blackout_never_violates_pte(self):
        class DropEverything(Network):
            def attempt_delivery(self, sender, receiver, root, now):
                return False

        pattern = build_pattern_system(CONFIG)
        trace = run_round(pattern, cancel_at=40.0, horizon=200.0,
                          network=DropEverything())
        report = check_trace(trace, pattern.rules)
        assert report.safe
        # With the request itself lost, nobody ever enters a risky location.
        assert report.risky_episodes[pattern.initializer_name] == 0

    def test_baseline_violates_under_targeted_loss(self):
        # Without leases, losing the initializer's exit/cancel notifications
        # leaves the participant paused while the supervisor cannot know;
        # eventually the supervisor's recovery is also lost and the pause
        # exceeds the Rule 1 bound used by the case study.
        baseline = build_baseline_system(CONFIG)
        vocabulary = baseline.vocabulary
        network = DropRoots({vocabulary.exited(2), vocabulary.request_cancel,
                             vocabulary.cancel(1), vocabulary.abort(1)})
        trace = run_round(baseline, cancel_at=40.0, horizon=300.0, network=network)
        rules = CONFIG.to_rule_set(baseline.entity_names, dwelling_bound=60.0)
        report = check_trace(trace, rules)
        assert not report.safe

    def test_lease_design_survives_same_targeted_loss(self):
        pattern = build_pattern_system(CONFIG)
        vocabulary = pattern.vocabulary
        network = DropRoots({vocabulary.exited(2), vocabulary.request_cancel,
                             vocabulary.cancel(1), vocabulary.abort(1)})
        trace = run_round(pattern, cancel_at=40.0, horizon=300.0, network=network)
        rules = CONFIG.to_rule_set(pattern.entity_names, dwelling_bound=60.0)
        report = check_trace(trace, rules)
        assert report.safe, report.violations
