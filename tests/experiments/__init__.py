"""Test package."""
