"""Integration tests for the experiment drivers (table/figure reproductions)."""

import pytest

from repro.casestudy import CaseStudyConfig
from repro.experiments import (PAPER_TABLE1, run_ablation_constraints, run_fig1, run_fig2,
                               run_fig3_5, run_fig6, run_scenarios, run_table1)


class TestFigureExperiments:
    def test_fig2_ventilator_checks_pass(self):
        result = run_fig2()
        assert result.passed, result.failed_checks()
        times, values = result.series["H_vent(t)"]
        assert len(times) == len(values) > 10

    def test_fig6_elaboration_checks_pass(self):
        result = run_fig6()
        assert result.passed, result.failed_checks()

    def test_fig1_timeline_checks_pass(self):
        result = run_fig1()
        assert result.passed, result.failed_checks()
        quantities = {row[0]: row[1] for row in result.rows}
        assert quantities["t1 (enter safeguard)"] >= 3.0
        assert quantities["t2 (exit safeguard)"] >= 1.5

    def test_fig3_5_pattern_checks_pass(self):
        result = run_fig3_5(entity_counts=(2, 3, 4))
        assert result.passed, result.failed_checks()
        assert [row[0] for row in result.rows] == [2, 3, 4]

    def test_render_produces_table(self):
        text = run_fig2().render()
        assert "H_vent" in text and "checks: PASS" in text


class TestScenarioAndAblation:
    def test_scenarios_lease_vs_baseline(self):
        result = run_scenarios()
        assert result.passed, result.failed_checks()

    def test_ablation_flags_broken_conditions(self):
        result = run_ablation_constraints()
        assert result.passed, result.failed_checks()


class TestTable1:
    @pytest.mark.slow
    def test_table1_shape_short_trials(self):
        # Shorter trials than the paper's 30 minutes keep the test quick while
        # still exercising the full harness; the lease-safety check must hold
        # for any duration.
        result = run_table1(config=CaseStudyConfig(), seed=42, duration=600.0)
        assert result.checks["with_lease_never_fails"]
        assert result.checks["evt_to_stop_only_with_lease"]
        assert len(result.rows) == 4
        assert len(PAPER_TABLE1) == 4
