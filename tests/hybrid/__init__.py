"""Test package."""
