"""Tests for the structural analysis helpers."""

from repro.core import laser_tracheotomy_configuration, build_pattern_system
from repro.hybrid import Edge, HybridAutomaton, Location, clock_flow, var_ge, var_le
from repro.hybrid.analysis import (analyze, analyze_system, locations_without_egress,
                                   potential_zeno_cycles, reachable_locations,
                                   timeblock_suspects, unreachable_locations)


def chain_automaton() -> HybridAutomaton:
    automaton = HybridAutomaton("chain", variables=["c"])
    for name in ("chain.A", "chain.B", "chain.C", "chain.Orphan"):
        automaton.add_location(Location(name, flow=clock_flow("c")))
    automaton.initial_location = "chain.A"
    automaton.add_edge(Edge("chain.A", "chain.B", guard=var_ge("c", 1.0)))
    automaton.add_edge(Edge("chain.B", "chain.C", guard=var_ge("c", 2.0)))
    return automaton


class TestReachability:
    def test_reachable_set(self):
        assert reachable_locations(chain_automaton()) == {"chain.A", "chain.B", "chain.C"}

    def test_unreachable_set(self):
        assert unreachable_locations(chain_automaton()) == {"chain.Orphan"}

    def test_dead_ends(self):
        assert locations_without_egress(chain_automaton()) == {"chain.C", "chain.Orphan"}


class TestZenoHeuristic:
    def test_instantaneous_cycle_flagged(self):
        automaton = HybridAutomaton("z", variables=["c"])
        automaton.add_location(Location("z.A", flow=clock_flow("c")))
        automaton.add_location(Location("z.B", flow=clock_flow("c")))
        automaton.initial_location = "z.A"
        automaton.add_edge(Edge("z.A", "z.B"))
        automaton.add_edge(Edge("z.B", "z.A"))
        assert potential_zeno_cycles(automaton)

    def test_clocked_cycle_not_flagged(self):
        automaton = HybridAutomaton("ok", variables=["c"])
        automaton.add_location(Location("ok.A", flow=clock_flow("c")))
        automaton.add_location(Location("ok.B", flow=clock_flow("c")))
        automaton.initial_location = "ok.A"
        automaton.add_edge(Edge("ok.A", "ok.B", guard=var_ge("c", 1.0)))
        automaton.add_edge(Edge("ok.B", "ok.A", guard=var_ge("c", 1.0)))
        assert potential_zeno_cycles(automaton) == []


class TestTimeblockHeuristic:
    def test_bounded_invariant_without_asap_egress_flagged(self):
        automaton = HybridAutomaton("tb", variables=["c"])
        automaton.add_location(Location("tb.A", flow=clock_flow("c"),
                                        invariant=var_le("c", 5.0)))
        automaton.add_location(Location("tb.B", flow=clock_flow("c")))
        automaton.initial_location = "tb.A"
        from repro.hybrid import receive_lossy
        automaton.add_edge(Edge("tb.A", "tb.B", trigger=receive_lossy("maybe")))
        assert timeblock_suspects(automaton) == {"tb.A"}


class TestPatternStructure:
    def test_pattern_automata_are_structurally_clean(self):
        pattern = build_pattern_system(laser_tracheotomy_configuration())
        for report in analyze_system(pattern.system):
            assert not report.unreachable, report.summary()
            assert not report.dead_ends, report.summary()
            assert not report.zeno_cycles, report.summary()
            assert not report.timeblock, report.summary()
            assert report.clean

    def test_report_summary_mentions_counts(self):
        pattern = build_pattern_system(laser_tracheotomy_configuration())
        report = analyze(pattern.supervisor)
        assert "|V|=" in report.summary() and "clean" in report.summary()
