"""Unit tests for HybridAutomaton, HybridSystem and trace bookkeeping."""

import pytest

from repro.errors import ModelError
from repro.hybrid import (Edge, HybridAutomaton, HybridSystem, Location, Reset,
                          clock_flow, receive_lossy, var_ge)
from repro.hybrid.trace import EventRecord, Trace, TransitionRecord


def make_toggle(name: str = "toggle", clock: str = "c") -> HybridAutomaton:
    """A two-location automaton that toggles every 2 seconds."""
    automaton = HybridAutomaton(name, variables=[clock])
    automaton.add_location(Location(f"{name}.Off", flow=clock_flow(clock)))
    automaton.add_location(Location(f"{name}.On", flow=clock_flow(clock), risky=True))
    automaton.initial_location = f"{name}.Off"
    automaton.add_edge(Edge(f"{name}.Off", f"{name}.On", guard=var_ge(clock, 2.0),
                            reset=Reset({clock: 0.0}), reason="on"))
    automaton.add_edge(Edge(f"{name}.On", f"{name}.Off", guard=var_ge(clock, 2.0),
                            reset=Reset({clock: 0.0}), reason="off"))
    return automaton


class TestHybridAutomaton:
    def test_duplicate_location_rejected(self):
        automaton = HybridAutomaton("a")
        automaton.add_location(Location("x"))
        with pytest.raises(ModelError):
            automaton.add_location(Location("x"))

    def test_edge_requires_existing_locations(self):
        automaton = HybridAutomaton("a")
        automaton.add_location(Location("x"))
        with pytest.raises(ModelError):
            automaton.add_edge(Edge("x", "missing"))

    def test_validate_requires_initial_location(self):
        automaton = HybridAutomaton("a")
        automaton.add_location(Location("x"))
        with pytest.raises(ModelError):
            automaton.validate()

    def test_risky_partition(self):
        automaton = make_toggle()
        assert automaton.risky_locations == {"toggle.On"}
        assert automaton.safe_locations == {"toggle.Off"}
        assert automaton.is_risky("toggle.On")

    def test_mark_risky(self):
        automaton = make_toggle()
        automaton.mark_risky("toggle.Off")
        assert automaton.risky_locations == {"toggle.On", "toggle.Off"}
        with pytest.raises(ModelError):
            automaton.mark_risky("nope")

    def test_sync_roots(self):
        automaton = make_toggle()
        automaton.add_edge(Edge("toggle.Off", "toggle.On",
                                trigger=receive_lossy("go"), emits=["ack"]))
        assert automaton.received_roots() == {"go"}
        assert automaton.emitted_roots() == {"ack"}

    def test_initial_valuation_defaults_to_zero(self):
        automaton = make_toggle()
        assert automaton.initial_valuation == {"c": 0.0}

    def test_initial_valuation_must_use_declared_variables(self):
        automaton = make_toggle()
        automaton.initial_valuation = {"unknown": 1.0}
        with pytest.raises(ModelError):
            automaton.validate()

    def test_copy_is_independent(self):
        automaton = make_toggle()
        clone = automaton.copy("clone")
        clone.add_location(Location("clone.Extra"))
        assert "clone.Extra" not in automaton.locations
        assert clone.name == "clone"

    def test_edges_from_and_to(self):
        automaton = make_toggle()
        assert len(automaton.edges_from("toggle.Off")) == 1
        assert len(automaton.edges_to("toggle.Off")) == 1

    def test_dimension(self):
        assert make_toggle().dimension == 1


class TestHybridSystem:
    def test_shared_variable_names_rejected(self):
        system = HybridSystem()
        system.add(make_toggle("a", clock="shared"))
        with pytest.raises(ModelError):
            system.add(make_toggle("b", clock="shared"))

    def test_shared_location_names_rejected(self):
        system = HybridSystem()
        first = make_toggle("a", clock="c1")
        second = make_toggle("a2", clock="c2")
        # Force a clash by renaming one of second's locations to match first's.
        second.add_location(first.location("a.Off").with_name("a.Off"))
        with pytest.raises(ModelError):
            system.add(first) and system.add(second)
        system2 = HybridSystem()
        system2.add(first)
        with pytest.raises(ModelError):
            system2.add(second)

    def test_receivers_and_emitters(self):
        system = HybridSystem()
        sender = make_toggle("sender", clock="cs")
        sender.add_edge(Edge("sender.Off", "sender.On", emits=["ping"]))
        receiver = make_toggle("receiver", clock="cr")
        receiver.add_edge(Edge("receiver.Off", "receiver.On",
                               trigger=receive_lossy("ping")))
        system.add(sender)
        system.add(receiver)
        assert system.receivers_of("ping") == [("receiver", True)]
        assert system.emitters_of("ping") == ["sender"]
        assert system.external_roots() == {"ping"}
        assert system.dangling_receive_roots() == set()

    def test_entity_mapping_defaults_to_name(self):
        system = HybridSystem()
        system.add(make_toggle("a", clock="ca"), entity="machine-1")
        system.add(make_toggle("b", clock="cb"))
        assert system.entity_of("a") == "machine-1"
        assert system.entity_of("b") == "b"
        assert system.entities() == {"machine-1", "b"}

    def test_unknown_member_lookup(self):
        with pytest.raises(ModelError):
            HybridSystem().automaton("missing")


class TestTrace:
    def _simple_trace(self) -> Trace:
        trace = Trace({"a": {"a.On"}})
        trace.register_automaton("a", "a.Off", {"a.On"})
        trace.record_transition(TransitionRecord(2.0, "a", "a.Off", "a.On", reason="on"))
        trace.record_transition(TransitionRecord(5.0, "a", "a.On", "a.Off", reason="off"))
        trace.record_event(EventRecord(2.0, "ping", "a", "b", delivered=True, lossy=True))
        trace.record_event(EventRecord(3.0, "ping", "a", "b", delivered=False, lossy=True))
        trace.close(10.0)
        return trace

    def test_location_at(self):
        trace = self._simple_trace()
        assert trace.location_at("a", 1.0) == "a.Off"
        assert trace.location_at("a", 3.0) == "a.On"
        assert trace.location_at("a", 9.0) == "a.Off"

    def test_risky_intervals(self):
        trace = self._simple_trace()
        assert trace.risky_intervals("a") == [(2.0, 5.0)]

    def test_dwell_merges_contiguous_visits(self):
        trace = Trace()
        trace.register_automaton("a", "x", set())
        trace.record_transition(TransitionRecord(1.0, "a", "x", "y"))
        trace.record_transition(TransitionRecord(2.0, "a", "y", "z"))
        trace.record_transition(TransitionRecord(4.0, "a", "z", "x"))
        trace.close(5.0)
        assert trace.dwell_intervals("a", {"y", "z"}) == [(1.0, 4.0)]

    def test_event_queries(self):
        trace = self._simple_trace()
        assert len(trace.delivered_events("ping")) == 1
        assert len(trace.lost_events("ping")) == 1
        assert trace.loss_ratio() == pytest.approx(0.5)

    def test_count_entries_and_transition_filters(self):
        trace = self._simple_trace()
        assert trace.count_entries("a", "a.On") == 1
        assert trace.transitions_of("a", reason="off")[0].time == 5.0
