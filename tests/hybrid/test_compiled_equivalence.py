"""Property-based equivalence: the fast kernels vs the reference engine.

The compiled and batched kernels are only allowed to be *faster*: for
every seed, every loss process and every model shape they must produce
bit-identical traces (transitions, event deliveries, samples, timestamps)
and bit-identical trial statistics.  These tests pit the kernels against
each other on randomized hybrid systems, on the laser-tracheotomy case
study in both lease modes, and on the Table I campaign — the batched
kernel additionally across batch widths, since its vectorized lockstep
must leave every lane exactly equal to a serial run with the same seed —
and also pin the streaming observer pipeline against the historical
post-hoc trace scan.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.casestudy import CaseStudyConfig, run_trial, run_trial_batch
from repro.casestudy.emulation import build_case_study, lease_ledger_from_trace
from repro.core.monitor import PTEMonitor
from repro.hybrid import (BatchedEngine, BoxPredicate, CallableFlow, CallbackProcess,
                          CompiledEngine, Edge, HybridAutomaton, HybridSystem, Lane,
                          Location, Reset, SimulationEngine, VariableCopyCoupling,
                          clock_flow, compile_system, receive_lossy, var_ge, var_le)
from repro.hybrid.simulate import TraceRecorder, build_engine, resolve_engine_kind
from repro.hybrid.simulate.engine import Network
from repro.util.seeding import derive_seed


class SeededLossyNetwork(Network):
    """Deterministic Bernoulli loss network (fresh stream per reset)."""

    def __init__(self, loss: float):
        self.loss = loss
        self._rng = random.Random(0)

    def attempt_delivery(self, sender_entity, receiver_entity, root, now):
        return self._rng.random() >= self.loss

    def reset(self, seed=None):
        self._rng = random.Random(seed)


def periodic_automaton(name: str, period: float, *, emits=(), listens=None,
                       priority: int = 0) -> HybridAutomaton:
    """Two-location clock automaton, optionally reacting to an event."""
    clock = f"c_{name}"
    automaton = HybridAutomaton(name, variables=[clock])
    automaton.add_location(Location(f"{name}.A", flow=clock_flow(clock)))
    automaton.add_location(Location(f"{name}.B", flow=clock_flow(clock)))
    automaton.initial_location = f"{name}.A"
    automaton.add_edge(Edge(f"{name}.A", f"{name}.B", guard=var_ge(clock, period),
                            reset=Reset({clock: 0.0}), emits=list(emits),
                            reason="tick", priority=priority))
    automaton.add_edge(Edge(f"{name}.B", f"{name}.A", guard=var_ge(clock, period),
                            reset=Reset({clock: 0.0}), reason="tock"))
    if listens is not None:
        automaton.add_edge(Edge(f"{name}.B", f"{name}.A",
                                trigger=receive_lossy(listens),
                                reset=Reset({clock: 0.0}), reason="poked",
                                priority=1))
    return automaton


def bouncer_automaton(name: str) -> HybridAutomaton:
    """Box-invariant automaton bouncing a variable between 0 and 1."""
    var = f"x_{name}"
    automaton = HybridAutomaton(name, variables=[var])
    automaton.add_location(Location(f"{name}.Up", flow=clock_flow(extra={var: 0.5}),
                                    invariant=BoxPredicate(var, 0.0, 1.0)))
    automaton.add_location(Location(f"{name}.Down", flow=clock_flow(extra={var: -0.5}),
                                    invariant=BoxPredicate(var, 0.0, 1.0)))
    automaton.initial_location = f"{name}.Up"
    automaton.add_edge(Edge(f"{name}.Up", f"{name}.Down", guard=var_ge(var, 1.0),
                            reason="top"))
    automaton.add_edge(Edge(f"{name}.Down", f"{name}.Up", guard=var_le(var, 0.0),
                            reason="bottom"))
    return automaton


def ode_automaton(name: str, gain: float) -> HybridAutomaton:
    """Non-affine automaton relaxing a value toward a coupled input."""
    out, target = f"y_{name}", f"u_{name}"
    flow = CallableFlow(
        lambda v: {out: gain * (v.get(target, 0.0) - v.get(out, 0.0))},
        variables=(out,), description="first-order relaxation", substep=0.05)
    automaton = HybridAutomaton(name, variables=[out, target],
                                initial_valuation={out: 0.0, target: 0.0})
    automaton.add_location(Location(f"{name}.Track", flow=flow))
    automaton.initial_location = f"{name}.Track"
    return automaton


def build_random_system(periods, loss, inject_at, gain):
    """One randomized hybrid system plus per-run engine ingredients."""
    system = HybridSystem("equivalence")
    names = [f"t{i}" for i in range(len(periods))]
    for i, (name, period) in enumerate(zip(names, periods)):
        emits = [f"ev{i}"]
        listens = f"ev{(i + 1) % len(names)}" if len(names) > 1 else None
        system.add(periodic_automaton(name, period, emits=emits, listens=listens),
                   entity=f"node-{i}")
    system.add(bouncer_automaton("bounce"), entity="node-0")
    system.add(ode_automaton("ode", gain), entity="node-0")

    def make_processes():
        return [CallbackProcess([(t, lambda e: e.inject_event("ev0"))
                                 for t in sorted(inject_at)])]

    def make_couplings():
        return [VariableCopyCoupling(
            source_automaton="bounce", source_variable="x_bounce",
            target_automaton="ode", target_variable="u_ode")]

    return system, make_processes, make_couplings


def run_engine(engine_cls, system, make_processes, make_couplings, loss, seed,
               horizon):
    engine = engine_cls(system, network=SeededLossyNetwork(loss),
                        processes=make_processes(), couplings=make_couplings(),
                        seed=seed, dt_max=0.25,
                        record_variables=[("ode", "y_ode")],
                        sample_interval=0.5)
    return engine.run(horizon)


def assert_traces_identical(reference, compiled):
    assert reference.transitions == compiled.transitions
    assert reference.events == compiled.events
    assert reference.end_time == compiled.end_time
    for automaton in reference.automata:
        assert compiled.visits(automaton) == reference.visits(automaton)


class TestRandomizedEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        periods=st.lists(st.floats(min_value=0.3, max_value=4.0,
                                   allow_nan=False, allow_infinity=False),
                         min_size=1, max_size=3),
        loss=st.floats(min_value=0.0, max_value=1.0),
        inject_at=st.lists(st.floats(min_value=0.0, max_value=9.0,
                                     allow_nan=False, allow_infinity=False),
                           max_size=3),
        gain=st.floats(min_value=0.1, max_value=2.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_random_systems_are_bit_identical(self, periods, loss, inject_at,
                                              gain, seed):
        system, make_processes, make_couplings = build_random_system(
            periods, loss, inject_at, gain)
        reference = run_engine(SimulationEngine, system, make_processes,
                               make_couplings, loss, seed, 10.0)
        compiled = run_engine(CompiledEngine, system, make_processes,
                              make_couplings, loss, seed, 10.0)
        assert_traces_identical(reference, compiled)
        assert reference.series("ode", "y_ode") == compiled.series("ode", "y_ode")


#: Batch widths the lockstep tests sweep: the degenerate single lane, a
#: small batch, and one spanning several vector-register granularities.
BATCH_WIDTHS = (1, 3, 17)


class TestBatchedEquivalence:
    """Every lane of a batched run == the serial reference run of its seed."""

    @pytest.mark.parametrize("width", BATCH_WIDTHS)
    def test_random_system_lanes_are_bit_identical(self, width):
        rng = random.Random(width)
        periods = [rng.uniform(0.3, 4.0) for _ in range(3)]
        loss = 0.4
        inject_at = [1.0, 4.5, 7.25]
        system, make_processes, make_couplings = build_random_system(
            periods, loss, inject_at, gain=0.9)
        seeds = [derive_seed(2013, f"batched:{width}:{lane}")
                 for lane in range(width)]
        references = [run_engine(SimulationEngine, system, make_processes,
                                 make_couplings, loss, seed, 10.0)
                      for seed in seeds]
        lanes = [Lane(seed=seed, network=SeededLossyNetwork(loss),
                      processes=make_processes()) for seed in seeds]
        engine = BatchedEngine(compile_system(system), lanes=lanes,
                               couplings=make_couplings(), dt_max=0.25,
                               record_variables=[("ode", "y_ode")],
                               sample_interval=0.5)
        traces = engine.run(10.0)
        assert len(traces) == width
        for reference, lane_trace in zip(references, traces):
            assert_traces_identical(reference, lane_trace)
            assert (reference.series("ode", "y_ode")
                    == lane_trace.series("ode", "y_ode"))

    @pytest.mark.parametrize("width", BATCH_WIDTHS)
    @pytest.mark.parametrize("with_lease", [True, False])
    def test_case_study_batch_matches_reference_trials(self, width, with_lease):
        config = CaseStudyConfig()
        seeds = [derive_seed(7, f"case:{width}:{lane}") for lane in range(width)]
        batch = run_trial_batch(config, with_lease=with_lease, seeds=seeds,
                                duration=200.0)
        assert len(batch) == width
        for seed, result in zip(seeds, batch):
            reference = run_trial(config, with_lease=with_lease, seed=seed,
                                  duration=200.0, engine="reference")
            assert result.table_row() == reference.table_row()
            assert result.ventilator_pauses == reference.ventilator_pauses
            assert result.max_emission_duration == reference.max_emission_duration
            assert result.max_pause_duration == reference.max_pause_duration
            assert result.min_spo2 == reference.min_spo2
            assert result.supervisor_aborts == reference.supervisor_aborts
            assert result.surgeon_requests == reference.surgeon_requests
            assert result.observed_loss_ratio == reference.observed_loss_ratio
            assert result.monitor is not None
            assert result.monitor.failure_count == reference.monitor.failure_count
            assert result.trace is None

    def test_single_lane_mode_is_a_drop_in_engine(self):
        system = HybridSystem()
        system.add(periodic_automaton("t", 1.0))
        reference = SimulationEngine(system, seed=3).run(5.0)
        single = build_engine(system, kind="batched", seed=3)
        assert single.kind == "batched"
        trace = single.run(5.0)
        assert_traces_identical(reference, trace)

    def test_case_study_trace_path_matches_reference(self):
        # keep_trace routes the batched kernel through its single-lane
        # recording mode; the trace-derived statistics must match too.
        config = CaseStudyConfig()
        reference = run_trial(config, with_lease=True, seed=11, duration=150.0,
                              keep_trace=True, engine="reference")
        batched = run_trial(config, with_lease=True, seed=11, duration=150.0,
                            keep_trace=True, engine="batched")
        assert batched.table_row() == reference.table_row()
        assert batched.min_spo2 == reference.min_spo2


CONFIG = CaseStudyConfig()


class TestCaseStudyEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2013])
    @pytest.mark.parametrize("with_lease", [True, False])
    def test_case_study_traces_bit_identical(self, seed, with_lease):
        traces = {}
        for engine_cls in (SimulationEngine, CompiledEngine):
            case = build_case_study(CONFIG, with_lease=with_lease, seed=seed)
            engine = engine_cls(case.system, network=case.network,
                                processes=[case.surgeon],
                                couplings=case.couplings, seed=seed,
                                dt_max=CONFIG.dt_max,
                                record_variables=[("patient", "spo2")],
                                sample_interval=0.5)
            traces[engine_cls.kind] = engine.run(300.0)
        assert_traces_identical(traces["reference"], traces["compiled"])
        assert (traces["reference"].series("patient", "spo2")
                == traces["compiled"].series("patient", "spo2"))

    @pytest.mark.parametrize("with_lease", [True, False])
    def test_streaming_stats_match_post_hoc_oracle(self, with_lease):
        oracle = run_trial(CONFIG, with_lease=with_lease, seed=5, duration=400.0,
                           keep_trace=True, engine="reference")
        for engine in ("reference", "compiled"):
            stream = run_trial(CONFIG, with_lease=with_lease, seed=5,
                               duration=400.0, engine=engine)
            assert stream.trace is None
            assert stream.table_row() == oracle.table_row()
            assert stream.ventilator_pauses == oracle.ventilator_pauses
            assert stream.max_emission_duration == oracle.max_emission_duration
            assert stream.max_pause_duration == oracle.max_pause_duration
            assert stream.min_spo2 == oracle.min_spo2
            assert stream.supervisor_aborts == oracle.supervisor_aborts
            assert stream.observed_loss_ratio == oracle.observed_loss_ratio
            # Monitor report and lease ledger are populated by the streaming
            # observer and agree with the trace-derived ones.
            assert stream.monitor is not None and stream.ledger is not None
            assert stream.monitor.failure_count == oracle.monitor.failure_count
            assert stream.monitor.max_dwell == oracle.monitor.max_dwell
            assert stream.monitor.risky_episodes == oracle.monitor.risky_episodes
            oracle_ledger = lease_ledger_from_trace(oracle.trace, CONFIG)
            for entity in ("ventilator", "laser_scalpel"):
                assert ([(lease.granted_at, lease.released_at, lease.outcome)
                         for lease in stream.ledger.of(entity)]
                        == [(lease.granted_at, lease.released_at, lease.outcome)
                            for lease in oracle_ledger.of(entity)])

    @pytest.mark.parametrize("engine_cls", [SimulationEngine, CompiledEngine])
    def test_stats_observer_tolerates_partial_systems(self, engine_cls):
        # Monitored entities that never register (subsystem runs) must get
        # empty risky sets, like the trace-based monitor gives them.
        from repro.casestudy import TrialStatsObserver, build_standalone_ventilator

        system = HybridSystem()
        system.add(build_standalone_ventilator(), entity="ventilator")
        stats = TrialStatsObserver(CONFIG)
        engine_cls(system, observers=[stats], record_trace=False).run(30.0)
        assert stats.report is not None
        assert stats.report.max_dwell["laser_scalpel"] == 0.0

    def test_interval_monitor_entry_point_matches_trace_entry_point(self):
        result = run_trial(CONFIG, with_lease=False, seed=9, duration=400.0,
                           keep_trace=True)
        monitor = PTEMonitor(CONFIG.rules())
        from repro.core.intervals import Interval, IntervalSet

        risky_sets = {
            entity: IntervalSet(Interval(s, e) for s, e in
                                result.trace.risky_intervals(entity))
            for entity in monitor.monitored_entities()}
        direct = monitor.check(result.trace)
        via_intervals = monitor.check_risky_intervals(risky_sets,
                                                      result.trace.end_time)
        assert via_intervals.failure_count == direct.failure_count
        assert len(via_intervals.violations) == len(direct.violations)
        assert via_intervals.max_dwell == direct.max_dwell


class TestTable1CampaignEquivalence:
    def test_table1_campaign_identical_across_engines(self):
        import json

        from repro.campaign import run_campaign, table1_spec

        spec = table1_spec(duration=200.0, legacy_seed=2013)
        payloads = {}
        for engine in ("reference", "compiled"):
            campaign = run_campaign(spec, seed=2013, max_workers=1,
                                    engine=engine)
            payloads[engine] = json.dumps(campaign.to_json()["campaign"],
                                          sort_keys=True)
        assert payloads["reference"] == payloads["compiled"]

    def test_stats_payload_equals_full_payload(self):
        from repro.campaign import run_campaign, table1_spec

        spec = table1_spec(duration=150.0, legacy_seed=7)
        stats = run_campaign(spec, seed=7, max_workers=1, payload="stats")
        full = run_campaign(spec, seed=7, max_workers=1, payload="full")
        assert stats.results is not None and full.results is not None
        assert all(r.trace is None for r in stats.results)
        assert all(r.trace is None for r in full.results)
        for streamed, scanned in zip(stats.results, full.results):
            assert streamed.table_row() == scanned.table_row()
            assert streamed.monitor is not None
            assert streamed.monitor.failure_count == scanned.monitor.failure_count
            assert streamed.ledger is not None


class TestEngineSelection:
    def test_resolve_engine_kind_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine_kind(None) == "reference"
        assert resolve_engine_kind("compiled") == "compiled"
        monkeypatch.setenv("REPRO_ENGINE", "compiled")
        assert resolve_engine_kind(None) == "compiled"
        assert resolve_engine_kind("reference") == "reference"
        monkeypatch.setenv("REPRO_ENGINE", "turbo")
        with pytest.raises(ValueError):
            resolve_engine_kind(None)

    def test_build_engine_returns_requested_kernel(self):
        system = HybridSystem()
        system.add(periodic_automaton("t", 1.0))
        assert build_engine(system, kind="reference").kind == "reference"
        assert build_engine(system, kind="compiled").kind == "compiled"

    def test_record_trace_false_streams_only(self):
        system = HybridSystem()
        system.add(periodic_automaton("t", 1.0))
        recorder = TraceRecorder()
        engine = CompiledEngine(system, record_trace=False, observers=[recorder])
        assert engine.run(5.0) is None
        assert engine.trace is None
        assert len(recorder.trace.transitions) > 0
