"""Tests for Definition 2/3 and the elaboration operator E(A, v, A')."""

import pytest

from repro.casestudy.ventilator import build_standalone_ventilator
from repro.errors import ElaborationError
from repro.experiments.fig_elaboration import build_fig6_parent
from repro.hybrid import (Edge, HybridAutomaton, HybridSystem, Location, SimulationEngine,
                          are_independent, are_mutually_independent, elaborate,
                          elaborate_parallel, elaboration_history, is_simple, var_ge,
                          clock_flow)
from repro.hybrid.flows import ConstantFlow


class TestIndependence:
    def test_independent_automata(self):
        parent = build_fig6_parent()
        child = build_standalone_ventilator()
        assert are_independent(parent, child)

    def test_shared_variable_breaks_independence(self):
        a = HybridAutomaton("a", variables=["x"], locations=[Location("a.L")],
                            initial_location="a.L")
        b = HybridAutomaton("b", variables=["x"], locations=[Location("b.L")],
                            initial_location="b.L")
        assert not are_independent(a, b)

    def test_shared_location_breaks_independence(self):
        a = HybridAutomaton("a", locations=[Location("shared")], initial_location="shared")
        b = HybridAutomaton("b", locations=[Location("shared")], initial_location="shared")
        assert not are_independent(a, b)

    def test_shared_label_breaks_independence(self):
        a = HybridAutomaton("a", locations=[Location("a.L")], initial_location="a.L")
        a.add_edge(Edge("a.L", "a.L", emits=["evt"]))
        b = HybridAutomaton("b", locations=[Location("b.L")], initial_location="b.L")
        b.add_edge(Edge("b.L", "b.L", emits=["evt"]))
        assert not are_independent(a, b)

    def test_mutual_independence(self):
        autos = [build_standalone_ventilator(name=f"v{i}") for i in range(3)]
        # They all share the same variable/location names -> not independent.
        assert not are_mutually_independent(autos)
        assert are_mutually_independent([build_fig6_parent(), build_standalone_ventilator()])


class TestSimplicity:
    def test_ventilator_is_simple(self):
        simple, why = is_simple(build_standalone_ventilator())
        assert simple, why

    def test_differing_invariants_not_simple(self):
        automaton = HybridAutomaton("ns", variables=["x"])
        automaton.add_location(Location("ns.A", invariant=var_ge("x", 0.0)))
        automaton.add_location(Location("ns.B"))
        automaton.initial_location = "ns.A"
        simple, why = is_simple(automaton)
        assert not simple and "invariant" in why


class TestAtomicElaboration:
    def test_fig6_structure(self):
        parent = build_fig6_parent()
        child = build_standalone_ventilator()
        result = elaborate(parent, "Fall-Back", child)
        assert result.location_names == {"Risky", "PumpOut", "PumpIn"}
        edges = {(e.source, e.target) for e in result.edges}
        assert ("Risky", "PumpOut") in edges          # ingress redirected to initial
        assert ("Risky", "PumpIn") not in edges       # not an initial location
        assert ("PumpOut", "Risky") in edges and ("PumpIn", "Risky") in edges
        assert ("PumpOut", "PumpIn") in edges and ("PumpIn", "PumpOut") in edges
        assert result.initial_location == "PumpOut"
        assert elaboration_history(result) == (("Fall-Back", child.name),)

    def test_parent_variables_keep_flowing_inside_child(self):
        parent = build_fig6_parent()
        child = build_standalone_ventilator()
        result = elaborate(parent, "Fall-Back", child)
        rates = result.location("PumpOut").flow.rates(result.initial_valuation)
        assert rates["x"] == pytest.approx(1.0)       # parent flow preserved
        assert rates["h_vent"] == pytest.approx(-0.1)  # child flow preserved

    def test_child_variables_frozen_outside_child(self):
        parent = build_fig6_parent()
        child = build_standalone_ventilator()
        result = elaborate(parent, "Fall-Back", child)
        rates = result.location("Risky").flow.rates(result.initial_valuation)
        assert "h_vent" not in rates or rates["h_vent"] == 0.0

    def test_elaborated_automaton_simulates(self):
        parent = build_fig6_parent()
        child = build_standalone_ventilator()
        result = elaborate(parent, "Fall-Back", child)
        system = HybridSystem()
        system.add(result)
        trace = SimulationEngine(system).run(20.0)
        locations = [v.location for v in trace.visits(result.name)]
        # It pumps until x reaches 5, then goes Risky, then returns to pumping.
        assert "Risky" in locations
        assert locations[0] in {"PumpOut", "PumpIn"}

    def test_risky_flag_inherited_from_elaborated_location(self):
        parent = build_fig6_parent()
        parent.mark_risky("Fall-Back")
        child = build_standalone_ventilator()
        result = elaborate(parent, "Fall-Back", child)
        assert {"PumpOut", "PumpIn"} <= result.risky_locations

    def test_non_simple_child_rejected(self):
        parent = build_fig6_parent()
        bad_child = HybridAutomaton("bad", variables=["y"])
        bad_child.add_location(Location("bad.A", invariant=var_ge("y", 0.0)))
        bad_child.add_location(Location("bad.B"))
        bad_child.initial_location = "bad.A"
        with pytest.raises(ElaborationError):
            elaborate(parent, "Fall-Back", bad_child)

    def test_dependent_child_rejected(self):
        parent = build_fig6_parent()
        clash = HybridAutomaton("clash", variables=["x"],
                                locations=[Location("clash.Only")],
                                initial_location="clash.Only")
        with pytest.raises(ElaborationError):
            elaborate(parent, "Fall-Back", clash)

    def test_unknown_location_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate(build_fig6_parent(), "Nowhere", build_standalone_ventilator())


class TestParallelElaboration:
    def _second_child(self) -> HybridAutomaton:
        child = HybridAutomaton("lamp", variables=["lum"])
        child.add_location(Location("Dim", flow=ConstantFlow({"lum": -1.0})))
        child.add_location(Location("Bright", flow=ConstantFlow({"lum": 1.0})))
        child.initial_location = "Dim"
        child.add_edge(Edge("Dim", "Bright", guard=var_ge("lum", 0.0)))
        return child

    def test_parallel_elaboration_applies_both_children(self):
        parent = build_fig6_parent()
        vent = build_standalone_ventilator()
        lamp = self._second_child()
        result = elaborate_parallel(parent, ["Fall-Back", "Risky"], [vent, lamp],
                                    name="both")
        assert result.name == "both"
        assert {"PumpOut", "PumpIn", "Dim", "Bright"} <= result.location_names
        assert "Fall-Back" not in result.location_names
        assert "Risky" not in result.location_names
        assert len(elaboration_history(result)) == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate_parallel(build_fig6_parent(), ["Fall-Back"], [])

    def test_duplicate_locations_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate_parallel(build_fig6_parent(), ["Fall-Back", "Fall-Back"],
                               [build_standalone_ventilator(), self._second_child()])

    def test_non_independent_children_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate_parallel(build_fig6_parent(), ["Fall-Back", "Risky"],
                               [build_standalone_ventilator(),
                                build_standalone_ventilator(name="other")])
