"""Integration tests for the hybrid-system simulation engine."""

import pytest

from repro.errors import ZenoError
from repro.hybrid import (CallbackProcess, CompiledEngine, Edge, EnvironmentProcess,
                          FunctionCoupling, HybridAutomaton, HybridSystem, Location,
                          Reset, SimulationEngine, clock_flow, receive, receive_lossy,
                          var_ge)
from repro.hybrid.simulate.engine import Network


def timed_automaton(name: str, clock: str, period: float,
                    emits: list[str] | None = None) -> HybridAutomaton:
    """Two-location automaton switching every ``period`` seconds."""
    automaton = HybridAutomaton(name, variables=[clock])
    automaton.add_location(Location(f"{name}.A", flow=clock_flow(clock)))
    automaton.add_location(Location(f"{name}.B", flow=clock_flow(clock)))
    automaton.initial_location = f"{name}.A"
    automaton.add_edge(Edge(f"{name}.A", f"{name}.B", guard=var_ge(clock, period),
                            reset=Reset({clock: 0.0}), emits=emits or [], reason="ab"))
    automaton.add_edge(Edge(f"{name}.B", f"{name}.A", guard=var_ge(clock, period),
                            reset=Reset({clock: 0.0}), reason="ba"))
    return automaton


class TestExactTiming:
    def test_asap_transitions_happen_at_exact_times(self):
        system = HybridSystem()
        system.add(timed_automaton("t", "c", 2.5))
        trace = SimulationEngine(system).run(10.0)
        times = [r.time for r in trace.transitions_of("t")]
        assert times == pytest.approx([2.5, 5.0, 7.5, 10.0]) or \
            times == pytest.approx([2.5, 5.0, 7.5])

    def test_visit_durations(self):
        system = HybridSystem()
        system.add(timed_automaton("t", "c", 3.0))
        trace = SimulationEngine(system).run(9.0)
        visits = trace.visits("t")
        assert [v.location for v in visits[:3]] == ["t.A", "t.B", "t.A"]
        assert visits[0].duration == pytest.approx(3.0)
        assert visits[1].duration == pytest.approx(3.0)


class TestEventCommunication:
    def _sender_receiver_system(self):
        system = HybridSystem()
        sender = timed_automaton("sender", "cs", 2.0, emits=["ping"])
        receiver = HybridAutomaton("receiver", variables=["cr"])
        receiver.add_location(Location("receiver.Idle", flow=clock_flow("cr")))
        receiver.add_location(Location("receiver.Got", flow=clock_flow("cr")))
        receiver.initial_location = "receiver.Idle"
        receiver.add_edge(Edge("receiver.Idle", "receiver.Got",
                               trigger=receive_lossy("ping"), reason="got"))
        system.add(sender, entity="node-a")
        system.add(receiver, entity="node-b")
        return system

    def test_event_delivered_instantaneously(self):
        system = self._sender_receiver_system()
        trace = SimulationEngine(system).run(3.0)
        got = trace.transitions_of("receiver", reason="got")
        assert len(got) == 1
        assert got[0].time == pytest.approx(2.0)
        assert got[0].trigger_root == "ping"

    def test_lossy_event_dropped_by_network(self):
        class DropAll(Network):
            def attempt_delivery(self, sender, receiver, root, now):
                return False

        system = self._sender_receiver_system()
        trace = SimulationEngine(system, network=DropAll()).run(3.0)
        assert trace.transitions_of("receiver", reason="got") == []
        assert len(trace.lost_events("ping")) == 1

    def test_reliable_local_event_bypasses_network(self):
        class DropAll(Network):
            def attempt_delivery(self, sender, receiver, root, now):
                return False

        system = HybridSystem()
        sender = timed_automaton("sender", "cs", 2.0, emits=["ping"])
        receiver = HybridAutomaton("receiver", variables=["cr"])
        receiver.add_location(Location("receiver.Idle", flow=clock_flow("cr")))
        receiver.add_location(Location("receiver.Got", flow=clock_flow("cr")))
        receiver.initial_location = "receiver.Idle"
        receiver.add_edge(Edge("receiver.Idle", "receiver.Got",
                               trigger=receive("ping"), reason="got"))
        system.add(sender, entity="same-box")
        system.add(receiver, entity="same-box")
        trace = SimulationEngine(system, network=DropAll()).run(3.0)
        assert len(trace.transitions_of("receiver", reason="got")) == 1

    def test_unconsumed_events_do_not_persist(self):
        # The receiver only listens in Idle; a second ping arriving while it
        # is already in Got must be ignored, and must not fire later.
        system = self._sender_receiver_system()
        trace = SimulationEngine(system).run(9.0)
        assert len(trace.transitions_of("receiver", reason="got")) == 1

    def test_injected_events_reach_receivers(self):
        system = self._sender_receiver_system()
        process = CallbackProcess([(1.0, lambda e: e.inject_event("ping"))])
        trace = SimulationEngine(system, processes=[process]).run(1.5)
        got = trace.transitions_of("receiver", reason="got")
        assert len(got) == 1 and got[0].time == pytest.approx(1.0)


class TestCouplingsAndProcesses:
    def test_coupling_copies_values_between_automata(self):
        system = HybridSystem()
        source = timed_automaton("source", "cs", 100.0)
        sink = HybridAutomaton("sink", variables=["mirror"])
        sink.add_location(Location("sink.Only"))
        sink.initial_location = "sink.Only"
        system.add(source)
        system.add(sink)
        coupling = FunctionCoupling(
            lambda engine: engine.set_variable(
                "sink", "mirror", engine.state.value_of("source", "cs")))
        engine = SimulationEngine(system, couplings=[coupling], dt_max=0.5)
        engine.run(2.0)
        assert engine.state.value_of("sink", "mirror") == pytest.approx(2.0, abs=0.6)

    def test_process_wakeups_are_respected(self):
        seen = []
        system = HybridSystem()
        system.add(timed_automaton("t", "c", 50.0))
        process = CallbackProcess([(1.25, lambda e: seen.append(e.now)),
                                   (2.5, lambda e: seen.append(e.now))])
        SimulationEngine(system, processes=[process]).run(5.0)
        assert seen == pytest.approx([1.25, 2.5])


class _WakeAtZeroProcess(EnvironmentProcess):
    """Injects one event at t=0; re-armed by ``initialize`` on every run."""

    name = "wake-at-zero"

    def initialize(self, engine):
        self._fired = False

    def next_wakeup(self, now):
        return None if self._fired else 0.0

    def wake(self, engine, now):
        self._fired = True
        engine.inject_event("ping", sender=self.name)


class TestRerun:
    def _ping_system(self):
        system = HybridSystem()
        receiver = HybridAutomaton("receiver", variables=["cr"])
        receiver.add_location(Location("receiver.Idle", flow=clock_flow("cr")))
        receiver.add_location(Location("receiver.Got", flow=clock_flow("cr")))
        receiver.initial_location = "receiver.Idle"
        receiver.add_edge(Edge("receiver.Idle", "receiver.Got",
                               trigger=receive_lossy("ping"), reason="got"))
        system.add(receiver, entity="node")
        return system

    @pytest.mark.parametrize("engine_cls", [SimulationEngine, CompiledEngine])
    def test_second_run_sees_time_zero_wakeups(self, engine_cls):
        # Regression: _initialize used to keep _time_of_last_wake across
        # runs, so a second run() on the same engine silently skipped every
        # t=0 process wakeup.
        engine = engine_cls(self._ping_system(),
                            processes=[_WakeAtZeroProcess()])
        first = engine.run(2.0)
        first_transitions = list(first.transitions)
        assert len(first_transitions) == 1 and first_transitions[0].time == 0.0
        second = engine.run(2.0)
        assert list(second.transitions) == first_transitions
        assert second.events == first.events


class TestPathologies:
    def test_zeno_loop_detected(self):
        automaton = HybridAutomaton("zeno", variables=["c"])
        automaton.add_location(Location("zeno.A", flow=clock_flow("c")))
        automaton.add_location(Location("zeno.B", flow=clock_flow("c")))
        automaton.initial_location = "zeno.A"
        # Two always-enabled ASAP edges form an instantaneous loop.
        automaton.add_edge(Edge("zeno.A", "zeno.B"))
        automaton.add_edge(Edge("zeno.B", "zeno.A"))
        system = HybridSystem()
        system.add(automaton)
        with pytest.raises(ZenoError):
            SimulationEngine(system, max_cascade=50).run(1.0)

    def test_deterministic_given_seed(self):
        from repro.casestudy import CaseStudyConfig, run_trial

        config = CaseStudyConfig()
        first = run_trial(config, with_lease=True, seed=11, duration=200.0)
        second = run_trial(config, with_lease=True, seed=11, duration=200.0)
        assert first.laser_emissions == second.laser_emissions
        assert first.evt_to_stop == second.evt_to_stop
        assert first.failures == second.failures
