"""Unit tests for guard/invariant predicates and their crossing times."""

import math

import pytest

from repro.hybrid.expressions import (And, BoxPredicate, FunctionPredicate, Not, Or,
                                      TRUE, FALSE, var_eq, var_ge, var_gt, var_le, var_lt)
from repro.hybrid.variables import Valuation


class TestLinearInequality:
    def test_evaluate_ge(self):
        guard = var_ge("c", 5.0)
        assert not guard.evaluate(Valuation({"c": 4.9}))
        assert guard.evaluate(Valuation({"c": 5.0}))
        assert guard.evaluate(Valuation({"c": 6.0}))

    def test_evaluate_missing_variable_defaults_to_zero(self):
        assert var_le("c", 1.0).evaluate(Valuation({}))
        assert not var_ge("c", 1.0).evaluate(Valuation({}))

    def test_time_until_true_with_positive_rate(self):
        guard = var_ge("c", 5.0)
        delay = guard.time_until_true(Valuation({"c": 2.0}), {"c": 1.0})
        assert delay == pytest.approx(3.0)

    def test_time_until_true_already_true(self):
        assert var_ge("c", 5.0).time_until_true(Valuation({"c": 6.0}), {"c": 1.0}) == 0.0

    def test_time_until_true_never(self):
        guard = var_ge("c", 5.0)
        assert math.isinf(guard.time_until_true(Valuation({"c": 2.0}), {"c": 0.0}))
        assert math.isinf(guard.time_until_true(Valuation({"c": 2.0}), {"c": -1.0}))

    def test_time_until_true_descending_threshold(self):
        guard = var_le("h", 0.0)
        delay = guard.time_until_true(Valuation({"h": 0.3}), {"h": -0.1})
        assert delay == pytest.approx(3.0)

    def test_time_until_false(self):
        guard = var_le("c", 5.0)
        delay = guard.time_until_false(Valuation({"c": 2.0}), {"c": 1.0})
        assert delay == pytest.approx(3.0)

    def test_equality_tolerance(self):
        guard = var_eq("x", 1.0)
        assert guard.evaluate(Valuation({"x": 1.0 + 1e-12}))
        assert not guard.evaluate(Valuation({"x": 1.1}))

    def test_strict_operators(self):
        assert var_gt("x", 1.0).evaluate(Valuation({"x": 1.5}))
        assert not var_gt("x", 1.0).evaluate(Valuation({"x": 1.0}))
        assert var_lt("x", 1.0).evaluate(Valuation({"x": 0.5}))


class TestCompositePredicates:
    def test_and_evaluate(self):
        guard = And((var_ge("c", 1.0), var_le("c", 2.0)))
        assert guard.evaluate(Valuation({"c": 1.5}))
        assert not guard.evaluate(Valuation({"c": 3.0}))

    def test_and_time_until_true_takes_latest(self):
        guard = And((var_ge("a", 4.0), var_ge("b", 2.0)))
        delay = guard.time_until_true(Valuation({"a": 0.0, "b": 0.0}),
                                      {"a": 1.0, "b": 1.0})
        assert delay == pytest.approx(4.0)

    def test_or_time_until_true_takes_earliest(self):
        guard = Or((var_ge("a", 4.0), var_ge("b", 2.0)))
        delay = guard.time_until_true(Valuation({"a": 0.0, "b": 0.0}),
                                      {"a": 1.0, "b": 1.0})
        assert delay == pytest.approx(2.0)

    def test_not_inverts(self):
        guard = Not(var_ge("c", 5.0))
        assert guard.evaluate(Valuation({"c": 1.0}))
        assert not guard.evaluate(Valuation({"c": 6.0}))

    def test_operator_overloads(self):
        combined = var_ge("c", 1.0) & var_le("c", 2.0)
        assert combined.evaluate(Valuation({"c": 1.5}))
        either = var_ge("c", 5.0) | var_le("c", 0.0)
        assert either.evaluate(Valuation({"c": -1.0}))
        assert (~var_ge("c", 5.0)).evaluate(Valuation({"c": 0.0}))

    def test_true_false_singletons(self):
        assert TRUE.evaluate(Valuation({}))
        assert not FALSE.evaluate(Valuation({}))
        assert math.isinf(TRUE.time_until_false(Valuation({}), {}))
        assert math.isinf(FALSE.time_until_true(Valuation({}), {}))


class TestBoxAndFunctionPredicates:
    def test_box_contains(self):
        box = BoxPredicate("h", 0.0, 0.3)
        assert box.evaluate(Valuation({"h": 0.15}))
        assert not box.evaluate(Valuation({"h": 0.5}))

    def test_box_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            BoxPredicate("h", 1.0, 0.0)

    def test_box_time_until_false(self):
        box = BoxPredicate("h", 0.0, 0.3)
        delay = box.time_until_false(Valuation({"h": 0.3}), {"h": -0.1})
        assert delay == pytest.approx(3.0)

    def test_box_time_until_true_from_outside(self):
        box = BoxPredicate("h", 0.0, 0.3)
        delay = box.time_until_true(Valuation({"h": -0.2}), {"h": 0.1})
        assert delay == pytest.approx(2.0)

    def test_function_predicate(self):
        predicate = FunctionPredicate(lambda v: v.get("spo2", 0.0) > 92.0, "spo2 ok")
        assert predicate.evaluate(Valuation({"spo2": 95.0}))
        assert not predicate.evaluate(Valuation({"spo2": 90.0}))
        # No closed-form crossing time: the simulator must fall back to sampling.
        assert predicate.time_until_true(Valuation({"spo2": 90.0}), {}) is None
