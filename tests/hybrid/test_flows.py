"""Unit tests for flow maps (constant, callable, composite)."""

import pytest

from repro.hybrid.flows import CallableFlow, CompositeFlow, ConstantFlow, STATIONARY, clock_flow
from repro.hybrid.variables import Valuation


class TestConstantFlow:
    def test_advance(self):
        flow = ConstantFlow({"c": 1.0, "h": -0.1})
        advanced = flow.advance(Valuation({"c": 0.0, "h": 0.3}), 2.0)
        assert advanced["c"] == pytest.approx(2.0)
        assert advanced["h"] == pytest.approx(0.1)

    def test_is_affine(self):
        assert ConstantFlow({"c": 1.0}).is_affine
        assert STATIONARY.is_affine

    def test_driven_variables_excludes_zero_rates(self):
        flow = ConstantFlow({"c": 1.0, "frozen": 0.0})
        assert flow.driven_variables() == {"c"}

    def test_clock_flow(self):
        flow = clock_flow("c", "g", extra={"h": -0.1})
        rates = flow.rates(Valuation({}))
        assert rates == {"c": 1.0, "g": 1.0, "h": -0.1}

    def test_merged_with_conflict(self):
        with pytest.raises(ValueError):
            ConstantFlow({"c": 1.0}).merged_with(ConstantFlow({"c": 2.0}))

    def test_merged_with_disjoint(self):
        merged = ConstantFlow({"a": 1.0}).merged_with(ConstantFlow({"b": 2.0}))
        assert merged.rates(Valuation({})) == {"a": 1.0, "b": 2.0}


class TestCallableFlow:
    def test_exponential_decay_integration(self):
        # dx/dt = -x, x(0) = 1 -> x(1) = exp(-1)
        flow = CallableFlow(lambda v: {"x": -v["x"]}, variables=("x",), substep=0.01)
        result = flow.advance(Valuation({"x": 1.0}), 1.0)
        assert result["x"] == pytest.approx(0.3678794, rel=1e-4)

    def test_not_affine(self):
        flow = CallableFlow(lambda v: {"x": -v["x"]}, variables=("x",))
        assert not flow.is_affine

    def test_zero_dt_is_identity(self):
        flow = CallableFlow(lambda v: {"x": -v["x"]}, variables=("x",))
        valuation = Valuation({"x": 5.0})
        assert flow.advance(valuation, 0.0) == valuation


class TestCompositeFlow:
    def test_combines_disjoint_parts(self):
        composite = CompositeFlow((ConstantFlow({"c": 1.0}), ConstantFlow({"h": -0.1})))
        rates = composite.rates(Valuation({}))
        assert rates == {"c": 1.0, "h": -0.1}
        assert composite.is_affine

    def test_advance_affine(self):
        composite = CompositeFlow((ConstantFlow({"c": 1.0}), ConstantFlow({"h": -0.1})))
        result = composite.advance(Valuation({"c": 0.0, "h": 0.3}), 1.0)
        assert result["c"] == pytest.approx(1.0)
        assert result["h"] == pytest.approx(0.2)

    def test_nested_composites_flatten(self):
        inner = CompositeFlow((ConstantFlow({"a": 1.0}),))
        outer = CompositeFlow((inner, ConstantFlow({"b": 2.0})))
        assert len(outer.parts) == 2

    def test_mixed_affinity(self):
        mixed = CompositeFlow((ConstantFlow({"c": 1.0}),
                               CallableFlow(lambda v: {"x": -v["x"]}, variables=("x",))))
        assert not mixed.is_affine
        result = mixed.advance(Valuation({"c": 0.0, "x": 1.0}), 0.5)
        assert result["c"] == pytest.approx(0.5)
        assert 0.0 < result["x"] < 1.0
