"""Unit tests for synchronization labels and valuations."""

import pytest

from repro.hybrid.labels import Prefix, SyncLabel, internal, parse_label, receive, receive_lossy, send
from repro.hybrid.variables import Valuation, zero_valuation


class TestSyncLabels:
    def test_parse_send(self):
        label = parse_label("!evtVPumpIn")
        assert label.prefix is Prefix.SEND
        assert label.root == "evtVPumpIn"
        assert label.is_send and not label.is_receive

    def test_parse_reliable_receive(self):
        label = parse_label("?evtVPumpIn")
        assert label.prefix is Prefix.RECEIVE
        assert label.is_receive and not label.is_lossy

    def test_parse_lossy_receive_prefers_longest_prefix(self):
        label = parse_label("??evtVPumpIn")
        assert label.prefix is Prefix.RECEIVE_LOSSY
        assert label.root == "evtVPumpIn"
        assert label.is_lossy

    def test_parse_internal(self):
        label = parse_label("tick")
        assert label.prefix is Prefix.INTERNAL
        assert label.is_internal

    def test_labels_with_different_prefixes_are_distinct(self):
        # The paper treats !l, ?l and ??l as three different labels.
        assert len({send("l"), receive("l"), receive_lossy("l"), internal("l")}) == 4

    def test_empty_root_rejected(self):
        with pytest.raises(ValueError):
            SyncLabel(Prefix.SEND, "")

    def test_whitespace_root_rejected(self):
        with pytest.raises(ValueError):
            SyncLabel(Prefix.SEND, "bad root")

    def test_str_round_trip(self):
        for label in (send("x"), receive("x"), receive_lossy("x"), internal("x")):
            assert parse_label(str(label)) == label


class TestValuation:
    def test_zero_valuation(self):
        valuation = zero_valuation(["a", "b"])
        assert valuation["a"] == 0.0 and valuation["b"] == 0.0

    def test_updated_returns_new_object(self):
        original = Valuation({"x": 1.0})
        updated = original.updated({"x": 2.0, "y": 3.0})
        assert original["x"] == 1.0
        assert updated["x"] == 2.0 and updated["y"] == 3.0

    def test_advanced_applies_rates(self):
        valuation = Valuation({"c": 1.0, "h": 0.3})
        advanced = valuation.advanced({"c": 1.0, "h": -0.1}, 2.0)
        assert advanced["c"] == pytest.approx(3.0)
        assert advanced["h"] == pytest.approx(0.1)

    def test_advanced_leaves_unlisted_variables_unchanged(self):
        valuation = Valuation({"c": 5.0, "frozen": 7.0})
        advanced = valuation.advanced({"c": 1.0}, 10.0)
        assert advanced["frozen"] == 7.0

    def test_advanced_rejects_negative_dt(self):
        with pytest.raises(ValueError):
            Valuation({"c": 0.0}).advanced({"c": 1.0}, -1.0)

    def test_restricted(self):
        valuation = Valuation({"a": 1.0, "b": 2.0, "c": 3.0})
        assert dict(valuation.restricted(["a", "c"])) == {"a": 1.0, "c": 3.0}

    def test_get_with_default(self):
        assert Valuation({}).get("missing", 9.0) == 9.0

    def test_equality_with_plain_mapping(self):
        assert Valuation({"x": 1.0}) == {"x": 1.0}
