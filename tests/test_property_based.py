"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.core import (IntervalSet, PTEMonitor, check_conditions,
                        synthesize_configuration)
from repro.core.intervals import Interval
from repro.hybrid.expressions import var_ge, var_le
from repro.hybrid.variables import Valuation
from repro.util.seeding import SeedSequenceFactory
from repro.wireless.channel import BernoulliChannel, GilbertElliottChannel

finite_times = st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
                         allow_infinity=False)


@st.composite
def interval_lists(draw, max_size=8):
    """Random lists of well-formed (start, end) pairs."""
    pairs = draw(st.lists(st.tuples(finite_times, finite_times), max_size=max_size))
    return [(min(a, b), max(a, b)) for a, b in pairs]


class TestIntervalSetProperties:
    @given(interval_lists())
    def test_normalization_is_sorted_and_disjoint(self, pairs):
        intervals = IntervalSet(pairs).intervals
        for first, second in zip(intervals, intervals[1:]):
            assert first.end < second.start
        assert all(iv.start <= iv.end for iv in intervals)

    @given(interval_lists())
    def test_total_duration_never_exceeds_raw_sum(self, pairs):
        raw = sum(end - start for start, end in pairs)
        assert IntervalSet(pairs).total_duration <= raw + 1e-6

    @given(interval_lists(), finite_times)
    def test_membership_consistent_with_raw_pairs(self, pairs, probe):
        inside_raw = any(start <= probe <= end for start, end in pairs)
        near_boundary = any(abs(probe - start) <= 1e-9 or abs(probe - end) <= 1e-9
                            for start, end in pairs)
        result = IntervalSet(pairs).contains(probe)
        # Exact agreement away from boundaries; tolerance may flip the answer
        # within EPSILON of an endpoint.
        assert result == inside_raw or near_boundary

    @given(interval_lists(), interval_lists())
    def test_intersection_is_subset_of_both(self, first, second):
        a, b = IntervalSet(first), IntervalSet(second)
        for interval in a.intersect(b):
            midpoint = (interval.start + interval.end) / 2.0
            assert a.contains(midpoint) and b.contains(midpoint)


class TestLinearGuardProperties:
    @given(st.floats(-100, 100), st.floats(-100, 100),
           st.floats(min_value=0.01, max_value=10.0))
    def test_crossing_time_is_consistent(self, value, threshold, rate):
        guard = var_ge("x", threshold)
        delay = guard.time_until_true(Valuation({"x": value}), {"x": rate})
        assert delay is not None
        if math.isfinite(delay):
            probe = Valuation({"x": value + rate * (delay + 1e-9)})
            assert guard.evaluate(probe)

    @given(st.floats(-100, 100), st.floats(-100, 100),
           st.floats(min_value=0.01, max_value=10.0))
    def test_descending_guard_crossing(self, value, threshold, rate):
        guard = var_le("x", threshold)
        delay = guard.time_until_true(Valuation({"x": value}), {"x": -rate})
        assert delay is not None
        if math.isfinite(delay):
            probe = Valuation({"x": value - rate * (delay + 1e-9)})
            assert guard.evaluate(probe)


class TestConfigurationSynthesisProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=6),
           st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=5, max_size=5),
           st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=5, max_size=5),
           st.floats(min_value=0.5, max_value=5.0))
    def test_synthesized_configurations_satisfy_theorem1(self, n, enters, exits, wait):
        config = synthesize_configuration(
            n_entities=n,
            enter_safeguards=enters[:n - 1],
            exit_safeguards=exits[:n - 1],
            t_wait_max=wait)
        report = check_conditions(config)
        assert report.satisfied, report.summary()
        # Theorem 1's dwelling bound is positive and finite.
        assert 0 < config.dwelling_bound < math.inf

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=0.1, max_value=20.0),
           st.floats(min_value=0.1, max_value=20.0))
    def test_guaranteed_margins_exceed_requested_safeguards(self, enter_sg, exit_sg):
        config = synthesize_configuration(
            n_entities=2, enter_safeguards=[enter_sg], exit_safeguards=[exit_sg])
        assert (config.timing(2).t_enter_max - config.timing(1).t_enter_max) > enter_sg
        assert config.timing(1).t_exit > exit_sg


class TestMonitorProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=0.0, max_value=50.0),
           st.floats(min_value=0.1, max_value=50.0),
           st.floats(min_value=0.0, max_value=20.0),
           st.floats(min_value=0.1, max_value=50.0))
    def test_embedded_intervals_with_margins_are_safe(self, start, inner_len,
                                                      margin, outer_len):
        """Outer strictly embedded with >= required margins is always accepted."""
        from tests.core.test_intervals_rules_monitor import (trace_with_intervals,
                                                             two_entity_rules)

        enter_sg, exit_sg = 3.0, 1.5
        inner = (start, start + enter_sg + margin + outer_len + exit_sg + margin + inner_len)
        outer = (start + enter_sg + margin, start + enter_sg + margin + outer_len)
        trace = trace_with_intervals([inner], [outer],
                                     horizon=inner[1] + exit_sg + 10.0)
        rules = two_entity_rules(enter=enter_sg, exit_=exit_sg, bound=1e9)
        assert PTEMonitor(rules).check(trace).safe

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=5.0, max_value=50.0),
           st.floats(min_value=0.1, max_value=2.8),
           st.floats(min_value=0.1, max_value=30.0))
    def test_insufficient_enter_margin_is_always_caught(self, start, short_margin,
                                                        outer_len):
        # The inner entity becomes risky well after the trace start (>= 5 s),
        # so the full 3 s enter-safeguard window is observable and a margin
        # below 3 s must be reported as a p1 violation.
        from tests.core.test_intervals_rules_monitor import (trace_with_intervals,
                                                             two_entity_rules)

        inner = (start, start + short_margin + outer_len + 10.0)
        outer = (start + short_margin, start + short_margin + outer_len)
        trace = trace_with_intervals([inner], [outer], horizon=inner[1] + 10.0)
        rules = two_entity_rules(enter=3.0, exit_=1.5, bound=1e9)
        assert not PTEMonitor(rules).check(trace).safe


class TestStochasticComponents:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1),
           st.floats(min_value=0.0, max_value=1.0))
    def test_bernoulli_channel_is_reproducible(self, seed, probability):
        first = BernoulliChannel(probability, seed=seed)
        second = BernoulliChannel(probability, seed=seed)
        assert [first.attempt(float(t)) for t in range(30)] == \
               [second.attempt(float(t)) for t in range(30)]

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_gilbert_channel_time_monotonic_queries_are_stable(self, seed):
        channel = GilbertElliottChannel(mean_good_duration=50.0, mean_bad_duration=10.0,
                                        seed=seed)
        outcomes = [channel.attempt(float(t)) for t in range(0, 100, 5)]
        assert len(outcomes) == 20

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**20), st.integers(min_value=1, max_value=50))
    def test_seed_factory_children_are_deterministic(self, master, count):
        first = SeedSequenceFactory(master).child_seeds(count)
        second = SeedSequenceFactory(master).child_seeds(count)
        assert first == second
        assert all(seed >= 0 for seed in first)


class TestIntervalValueObjects:
    @given(finite_times, st.floats(min_value=0.0, max_value=100.0))
    def test_interval_duration_and_shift(self, start, length):
        import pytest

        interval = Interval(start, start + length)
        assert interval.duration == pytest.approx(length, abs=1e-6)
        shifted = interval.shifted(5.0)
        assert shifted.duration == pytest.approx(interval.duration, abs=1e-6)

    @given(finite_times, st.floats(min_value=0.0, max_value=100.0),
           st.floats(min_value=-1e3, max_value=1e3))
    def test_contains_matches_bounds(self, start, length, probe):
        interval = Interval(start, start + length)
        expected = start - 1e-9 <= probe <= start + length + 1e-9
        assert interval.contains(probe) == expected
