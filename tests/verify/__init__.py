"""Test package."""
