"""Statistical correctness tests of the rare-event estimators.

The fast tests pin the estimator mechanics (settings validation, the
threshold schedule, the error-bound arithmetic, JSON round-trips).  The
``slow``-marked tests are the statistical harness the module exists for:
splitting is *unbiased* on a birth--death chain with a closed-form
probability, its confidence intervals cover the truth at roughly the
nominal rate, and Wald's SPRT respects its alpha/beta error budgets
empirically.  They run in CI's ``rare`` job with fixed seeds.
"""

import functools
import math
import statistics

import pytest

from repro.util.seeding import ForkPlan, derive_seed, rng_session, spawn_rng
from repro.verify.rare import (CELL_EVENTS, CellTemplate, RareEventEstimate,
                               ScoredTrial, SplitSettings,
                               chain_success_probability, crude_estimate,
                               crude_trials_for, fixed_effort_splitting,
                               run_chain_trial, z_value)
from repro.verify.sprt import (SequentialProbabilityRatioTest, SprtResult,
                               SprtSettings, run_sprt_trials)

#: The toy chain of every statistical test: truth ~= 3.88e-3.
CHAIN = dict(up=0.4, size=12)
CHAIN_TRUTH = chain_success_probability(**CHAIN)
chain_trial = functools.partial(run_chain_trial, **CHAIN)


class TestSettingsValidation:
    def test_split_settings_reject_bad_values(self):
        with pytest.raises(ValueError):
            SplitSettings(trials_per_level=1)
        with pytest.raises(ValueError):
            SplitSettings(quantile=0.0)
        with pytest.raises(ValueError):
            SplitSettings(quantile=1.0)
        with pytest.raises(ValueError):
            SplitSettings(max_levels=0)
        with pytest.raises(ValueError):
            SplitSettings(confidence=1.0)
        with pytest.raises(ValueError):
            SplitSettings(levels=())
        with pytest.raises(ValueError):
            SplitSettings(levels=(0.5, 0.5))

    def test_sprt_settings_reject_bad_values(self):
        with pytest.raises(ValueError):
            SprtSettings(p0=0.2, p1=0.1)
        with pytest.raises(ValueError):
            SprtSettings(p0=0.0, p1=0.1)
        with pytest.raises(ValueError):
            SprtSettings(p0=0.01, p1=0.1, alpha=0.0)
        with pytest.raises(ValueError):
            SprtSettings(p0=0.01, p1=0.1, beta=1.0)
        with pytest.raises(ValueError):
            SprtSettings(p0=0.01, p1=0.1, max_trials=0)

    def test_cell_template_rejects_unknown_event(self):
        from repro.casestudy.config import CaseStudyConfig
        with pytest.raises(ValueError):
            CellTemplate(config=CaseStudyConfig(), event="nope")
        for event in CELL_EVENTS:
            CellTemplate(config=CaseStudyConfig(), event=event)


class TestEstimateArithmetic:
    def test_z_value_matches_known_quantiles(self):
        assert z_value(0.95) == pytest.approx(1.959964, abs=1e-5)
        assert z_value(0.99) == pytest.approx(2.575829, abs=1e-5)

    def test_crude_trials_for(self):
        # (1 - p) / (p * re^2), rounded up.
        assert crude_trials_for(0.01, 0.1) == math.ceil(0.99 / (0.01 * 0.01))
        assert crude_trials_for(0.5, 1.0) == 1

    def test_chain_truth_closed_form(self):
        # Gambler's ruin from 1 with up-probability r:
        # p = (1 - rho) / (1 - rho^size), rho = (1-r)/r.
        rho = 0.6 / 0.4
        expected = (1 - rho) / (1 - rho ** 12)
        assert CHAIN_TRUTH == pytest.approx(expected)

    def test_estimate_json_round_trip(self):
        est = fixed_effort_splitting(
            chain_trial, master_seed=5,
            settings=SplitSettings(trials_per_level=32))
        again = RareEventEstimate.from_json(est.to_json())
        assert again == est

    def test_sprt_result_json_round_trip(self):
        settings = SprtSettings(p0=0.01, p1=0.2, max_trials=500)
        result = run_sprt_trials(chain_trial, master_seed=5,
                                 settings=settings)
        again = SprtResult.from_json(result.to_json())
        assert again == result

    def test_zero_estimate_is_saturated_with_infinite_error(self):
        # A chain that can never reach the top within max_levels of
        # adaptive splitting on a tiny effort will eventually die out;
        # force it directly with an impossible explicit ladder.
        dead = functools.partial(run_chain_trial, up=0.01, size=40)
        est = fixed_effort_splitting(
            dead, master_seed=3,
            settings=SplitSettings(trials_per_level=8, levels=(0.9,)))
        assert est.probability == 0.0
        assert est.rel_error == math.inf
        assert est.ci_high == math.inf


class TestScoredTrial:
    def test_chain_trial_staircase_is_increasing_and_watermarked(self):
        trial = chain_trial(ForkPlan(derive_seed(1, "t")))
        scores = [score for score, _ in trial.staircase]
        assert scores == sorted(scores)
        assert trial.score == scores[-1]
        assert all(marks is not None for _, marks in trial.staircase)

    def test_watermark_at_returns_first_crossing(self):
        trial = ScoredTrial(plan=ForkPlan(1), score=0.8, violation=False,
                            staircase=((0.2, {"a": 1}), (0.5, {"a": 3}),
                                       (0.8, {"a": 9})))
        assert trial.watermark_at(0.4) == {"a": 3}
        assert trial.watermark_at(0.8) == {"a": 9}
        assert trial.watermark_at(0.9) is None


# -- the statistical harness (CI `rare` job) ---------------------------------

def _bernoulli_trial(plan: ForkPlan, p: float) -> ScoredTrial:
    """Trivial Bernoulli trial used to test the SPRT's error rates."""
    with rng_session(plan) as ledger:
        rng = spawn_rng(plan.root_seed, "coin")
        hit = rng.random() < p
        marks = ledger.snapshot()
    return ScoredTrial(plan=plan, score=1.0 if hit else 0.0, violation=hit,
                       staircase=((1.0, marks),) if hit else ())


@pytest.mark.slow
class TestSplittingStatistics:
    REPS = 200
    #: Fixed ladder on the chain's score grid (score = state / 12).
    LADDER = tuple(k / 12 for k in range(2, 12))

    def _replicates(self, settings):
        return [fixed_effort_splitting(chain_trial, master_seed=rep,
                                       settings=settings)
                for rep in range(self.REPS)]

    def test_fixed_ladder_splitting_is_unbiased_on_the_chain(self):
        estimates = [e.probability for e in self._replicates(
            SplitSettings(trials_per_level=32, levels=self.LADDER))]
        mean = statistics.fmean(estimates)
        sem = statistics.stdev(estimates) / math.sqrt(len(estimates))
        # With fixed thresholds the product of conditional probabilities
        # is exactly unbiased: the replicate mean sits within 4 standard
        # errors of the closed-form truth (~6e-5 false-failure rate).
        assert abs(mean - CHAIN_TRUTH) <= 4.0 * sem, (
            f"mean {mean:.3e} vs truth {CHAIN_TRUTH:.3e} (sem {sem:.1e})")

    def test_adaptive_bias_shrinks_with_effort(self):
        # Adaptive threshold placement has the well-known O(1/N) upward
        # bias (Cerou & Guyader): ~+46% at N=32 on this chain.  Pin that
        # it shrinks roughly linearly as the per-level effort grows.
        def bias(n):
            mean = statistics.fmean(
                e.probability for e in self._replicates(
                    SplitSettings(trials_per_level=n, max_levels=15)))
            return (mean - CHAIN_TRUTH) / CHAIN_TRUTH
        small, large = bias(32), bias(128)
        assert abs(large) < abs(small)
        assert abs(large) <= 0.25, f"adaptive bias at N=128: {large:+.1%}"

    def test_confidence_intervals_cover_the_truth(self):
        estimates = self._replicates(
            SplitSettings(trials_per_level=32, levels=self.LADDER))
        covered = sum(1 for e in estimates
                      if e.probability > 0
                      and e.ci_low <= CHAIN_TRUTH <= e.ci_high)
        # Nominal 95% lognormal intervals; the delta-method approximation
        # and occasional zero-collapses cost some coverage, so gate at 85%.
        assert covered / self.REPS >= 0.85, f"coverage {covered}/{self.REPS}"

    def test_crude_estimator_agrees_on_the_chain(self):
        est = crude_estimate(chain_trial, master_seed=77, trials=20_000)
        assert est.ci_low <= CHAIN_TRUTH <= est.ci_high


@pytest.mark.slow
class TestSprtErrorRates:
    REPS = 300
    SETTINGS = SprtSettings(p0=0.05, p1=0.25, alpha=0.05, beta=0.05,
                            max_trials=2000)

    def _error_rate(self, true_p: float, wrong: str) -> float:
        trial_fn = functools.partial(_bernoulli_trial, p=true_p)
        wrong_count = 0
        for rep in range(self.REPS):
            result = run_sprt_trials(trial_fn, master_seed=rep,
                                     settings=self.SETTINGS,
                                     name=f"sprt:{true_p}:{rep}")
            if result.decision == wrong:
                wrong_count += 1
        return wrong_count / self.REPS

    def test_type_one_error_respects_alpha(self):
        # Truth at H0: deciding H1 is the type-I error, budget alpha=5%.
        rate = self._error_rate(self.SETTINGS.p0, "H1")
        assert rate <= 0.10, f"empirical alpha {rate:.3f}"

    def test_type_two_error_respects_beta(self):
        # Truth at H1: deciding H0 is the type-II error, budget beta=5%.
        rate = self._error_rate(self.SETTINGS.p1, "H0")
        assert rate <= 0.10, f"empirical beta {rate:.3f}"

    def test_indifference_region_truncates_with_forced_decision(self):
        # Truth between p0 and p1: many runs reach the truncation point;
        # the forced decision still reports sensibly.
        trial_fn = functools.partial(_bernoulli_trial, p=0.12)
        settings = SprtSettings(p0=0.05, p1=0.25, alpha=0.05, beta=0.05,
                                max_trials=60)
        results = [run_sprt_trials(trial_fn, master_seed=rep,
                                   settings=settings, name=f"ind:{rep}")
                   for rep in range(50)]
        truncated = [r for r in results if not r.decided_early]
        assert truncated, "expected some truncated runs in the gap"
        assert all(r.trials_used <= 60 for r in results)
        assert all(r.decision in ("H0", "H1") for r in results)


class TestSprtMechanics:
    def test_llr_updates_match_wald(self):
        settings = SprtSettings(p0=0.1, p1=0.3, alpha=0.05, beta=0.05,
                                max_trials=100)
        test = SequentialProbabilityRatioTest(settings)
        test.update(True)
        test.update(False)
        expected = (math.log(0.3 / 0.1)
                    + math.log((1 - 0.3) / (1 - 0.1)))
        assert test.llr == pytest.approx(expected)
        assert test.count == 2
        assert test.violations == 1

    def test_accepts_h1_on_all_violations(self):
        settings = SprtSettings(p0=0.01, p1=0.5, alpha=0.01, beta=0.01,
                                max_trials=100)
        test = SequentialProbabilityRatioTest(settings)
        while not test.decided:
            test.update(True)
        assert test.decision == "H1"
        assert test.count < 100

    def test_accepts_h0_on_no_violations(self):
        settings = SprtSettings(p0=0.01, p1=0.5, alpha=0.01, beta=0.01,
                                max_trials=1000)
        test = SequentialProbabilityRatioTest(settings)
        while not test.decided:
            test.update(False)
        assert test.decision == "H0"
        assert test.count < 1000
