"""Determinism regressions for the rare-event estimators.

Every estimate must be a pure function of the master seed and the
estimator settings: invariant to worker count, to the simulation engine
tier, and to being killed mid-run and resumed from the durable store.
These are the properties the fork-by-replay seeding discipline exists to
provide, so they are pinned here as hard equalities, not tolerances.
"""

import dataclasses
import functools
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.campaign.spec import ChannelSpec
from repro.campaign.store import CRASH_EXIT_CODE, CampaignStore
from repro.casestudy.config import CaseStudyConfig, SurgeonModel
from repro.util.seeding import ForkPlan, derive_seed
from repro.verify.rare import (CellTemplate, SplitSettings, crude_estimate,
                               fixed_effort_splitting, pool_map,
                               run_chain_trial, scored_case_trial)
from repro.verify.sprt import SprtSettings, run_sprt_campaign, run_sprt_trials

_REPO_ROOT = Path(__file__).resolve().parents[2]

chain_trial = functools.partial(run_chain_trial, up=0.4, size=12)

SPLIT_SETTINGS = SplitSettings(trials_per_level=64, max_levels=15)


def _subprocess_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(_REPO_ROOT / "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    env.pop("REPRO_CAMPAIGN_CRASH_AFTER", None)
    env.update(extra)
    return env


class TestWorkerInvariance:
    def test_split_estimate_is_worker_count_invariant(self):
        serial = fixed_effort_splitting(chain_trial, master_seed=9,
                                        settings=SPLIT_SETTINGS)
        pooled = fixed_effort_splitting(
            chain_trial, master_seed=9, settings=SPLIT_SETTINGS,
            map_fn=functools.partial(pool_map, max_workers=3))
        assert pooled == serial

    def test_crude_estimate_is_worker_count_invariant(self):
        serial = crude_estimate(chain_trial, master_seed=9, trials=500)
        pooled = crude_estimate(
            chain_trial, master_seed=9, trials=500,
            map_fn=functools.partial(pool_map, max_workers=3))
        assert pooled == serial

    def test_sprt_is_worker_count_invariant(self):
        settings = SprtSettings(p0=1e-3, p1=0.05, max_trials=3000)
        serial = run_sprt_trials(chain_trial, master_seed=9,
                                 settings=settings)
        pooled = run_sprt_trials(
            chain_trial, master_seed=9, settings=settings,
            map_fn=functools.partial(pool_map, max_workers=3))
        assert pooled == serial


class TestEngineTierInvariance:
    """The same fork plan produces the same scored trial on every kernel."""

    def _template(self, engine):
        config = dataclasses.replace(
            CaseStudyConfig(),
            surgeon=SurgeonModel(mean_toff=6.0, resample_quantum=2.0))
        return CellTemplate(config=config, with_lease=False, duration=300.0,
                            channel=ChannelSpec(kind="bernoulli", loss=1e-4),
                            engine=engine, event="dwell")

    def test_scored_trial_is_engine_tier_invariant(self):
        plan = ForkPlan(derive_seed(4, "tier:root:0"))
        reference = scored_case_trial(self._template("reference"), plan)
        for engine in ("compiled", "batched"):
            other = scored_case_trial(self._template(engine), plan)
            assert other == reference, f"{engine} diverged from reference"

    @pytest.mark.slow
    def test_split_estimate_is_engine_tier_invariant(self):
        settings = SplitSettings(trials_per_level=16, max_levels=4)
        estimates = {}
        for engine in ("reference", "compiled", "batched"):
            trial_fn = functools.partial(scored_case_trial,
                                         self._template(engine))
            estimates[engine] = fixed_effort_splitting(
                trial_fn, master_seed=4, settings=settings)
        assert estimates["compiled"] == estimates["reference"]
        assert estimates["batched"] == estimates["reference"]


class TestCrashResume:
    """SIGKILL-grade interruption mid-level, then bit-identical resume."""

    CHILD = textwrap.dedent("""
        import functools, sys
        from repro.campaign.store import CampaignStore
        from repro.verify.rare import (SplitSettings, fixed_effort_splitting,
                                       run_chain_trial)
        chain = functools.partial(run_chain_trial, up=0.4, size=12)
        with CampaignStore(sys.argv[1]) as store:
            fixed_effort_splitting(
                chain, master_seed=9,
                settings=SplitSettings(trials_per_level=64, max_levels=15),
                store=store, identity="chain-crash")
    """)

    def test_split_resumes_bit_identically_after_crash(self, tmp_path):
        reference = fixed_effort_splitting(chain_trial, master_seed=9,
                                           settings=SPLIT_SETTINGS)
        assert len(reference.factors) >= 4, "need a multi-level run"

        db = tmp_path / "estimators.db"
        # Die via os._exit(86) right after the level-2 checkpoint commits:
        # no context managers unwind, exactly like a SIGKILL mid-run.
        proc = subprocess.run(
            [sys.executable, "-c", self.CHILD, str(db)],
            env=_subprocess_env(REPRO_CAMPAIGN_CRASH_AFTER="2"),
            cwd=_REPO_ROOT, capture_output=True, text=True, timeout=300)
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr

        with CampaignStore(db) as store:
            state = store.load_estimator_state("split", "chain-crash")
            assert state is not None and not state["done"]
            assert state["level"] == 2
            resumed = fixed_effort_splitting(
                chain_trial, master_seed=9, settings=SPLIT_SETTINGS,
                store=store, identity="chain-crash", resume=True)
        assert resumed == reference

    def test_completed_split_short_circuits_on_resume(self, tmp_path):
        db = tmp_path / "estimators.db"
        with CampaignStore(db) as store:
            first = fixed_effort_splitting(
                chain_trial, master_seed=9, settings=SPLIT_SETTINGS,
                store=store, identity="chain-done")
            state = store.load_estimator_state("split", "chain-done")
            assert state["done"]
            again = fixed_effort_splitting(
                chain_trial, master_seed=9, settings=SPLIT_SETTINGS,
                store=store, identity="chain-done", resume=True)
        assert again == first


@pytest.mark.slow
class TestSprtCampaignDeterminism:
    """The campaign-wrapped SPRT: worker counts and store resume."""

    def _run(self, **kwargs):
        from repro.campaign.presets import table1_spec
        spec = table1_spec(mean_toffs=(18.0,), duration=300.0, replicates=1,
                           legacy_seed=3)
        settings = SprtSettings(p0=0.05, p1=0.3, max_trials=200)
        return run_sprt_campaign(spec, cell_index=1, master_seed=3,
                                 settings=settings, engine="compiled",
                                 **kwargs)

    def test_worker_count_invariant(self):
        serial = self._run(max_workers=1)
        pooled = self._run(max_workers=3, batch_size=4)
        assert pooled == serial
        assert serial.decided_early

    def test_store_resume_returns_identical_result(self, tmp_path):
        db = tmp_path / "sprt.db"
        with CampaignStore(db) as store:
            first = self._run(max_workers=1, store=store)
        with CampaignStore(db) as store:
            again = self._run(max_workers=1, store=store, resume=True)
        assert again == first
