"""Tests for the fault-injection verification harness."""

from repro.casestudy import CaseStudyConfig, run_trial
from repro.verify import (CampaignSettings, FaultScenario, blackout_scenario,
                          bounded_dwelling_property, pte_safety_property,
                          run_case_study_campaign, single_risky_visit_per_round_property,
                          standard_fault_scenarios)
from repro.verify.properties import auto_reset_property
from repro.wireless import PerfectChannel
from repro.wireless.channel import BernoulliChannel, GilbertElliottChannel, ScriptedChannel

CONFIG = CaseStudyConfig()


class TestFaultScenarios:
    def test_standard_family_builds_channels(self):
        scenarios = standard_fault_scenarios()
        names = {s.name for s in scenarios}
        assert "perfect" in names
        kinds = {type(s.build_channel(seed=1)) for s in scenarios}
        assert PerfectChannel in kinds or BernoulliChannel in kinds
        assert any(isinstance(s.build_channel(1), GilbertElliottChannel)
                   for s in scenarios)

    def test_blackout_scenario(self):
        channel = blackout_scenario(10.0, 20.0).build_channel()
        assert isinstance(channel, ScriptedChannel)
        assert not channel.attempt(15.0).received_by_application
        assert channel.attempt(25.0).received_by_application


class TestProperties:
    def _safe_trace(self):
        result = run_trial(CONFIG, with_lease=True, seed=8, duration=300.0,
                           keep_trace=True)
        return result.trace

    def test_pte_safety_property_on_lease_trace(self):
        prop = pte_safety_property(CONFIG.rules())
        assert prop.evaluate(self._safe_trace()).holds

    def test_bounded_dwelling_property(self):
        trace = self._safe_trace()
        ok = bounded_dwelling_property(["ventilator", "laser_scalpel"], 60.0)
        assert ok.evaluate(trace).holds
        tight = bounded_dwelling_property(["ventilator", "laser_scalpel"], 0.5)
        # With any emission at all, a 0.5 s bound cannot hold.
        emitted = trace.count_entries("laser_scalpel", "xi2.Risky Core") > 0
        assert tight.evaluate(trace).holds != emitted or not emitted

    def test_auto_reset_property(self):
        trace = self._safe_trace()
        auto_reset_property(
            ["ventilator", "laser_scalpel"],
            {"ventilator": "PumpOut", "laser_scalpel": "xi2.Fall-Back"},
            horizon=CONFIG.pattern.round_horizon + CONFIG.pattern.t_wait_max)
        # The ventilator's Fall-Back is elaborated into PumpOut/PumpIn, so we
        # only check the laser here (its Fall-Back is a single location).
        laser_only = auto_reset_property(
            ["laser_scalpel"], {"laser_scalpel": "xi2.Fall-Back"},
            horizon=CONFIG.pattern.round_horizon)
        assert laser_only.evaluate(trace).holds

    def test_single_risky_visit_per_round(self):
        trace = self._safe_trace()
        prop = single_risky_visit_per_round_property(
            "laser_scalpel", "evt_xi0_to_xi1_lease_req")
        assert prop.evaluate(trace).holds


class TestCampaigns:
    def test_lease_campaign_passes_everywhere(self):
        settings = CampaignSettings(
            scenarios=[FaultScenario("perfect", "no loss", kind="perfect"),
                       FaultScenario("heavy", "50% loss", {"loss_probability": 0.5},
                                     kind="bernoulli")],
            seeds_per_scenario=2, trial_duration=300.0, master_seed=11, with_lease=True)
        report = run_case_study_campaign(CONFIG, settings)
        assert report.total_trials == 4
        assert report.all_passed, report.summary()
        assert report.pass_rate() == 1.0

    def test_report_bookkeeping(self):
        settings = CampaignSettings(
            scenarios=[FaultScenario("perfect", "no loss", kind="perfect")],
            seeds_per_scenario=2, trial_duration=200.0, master_seed=5, with_lease=True)
        report = run_case_study_campaign(CONFIG, settings)
        by_scenario = report.by_scenario()
        assert by_scenario["perfect"] == (2, 2)
        assert "pass rate" in report.summary()
