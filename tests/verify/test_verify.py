"""Tests for the fault-injection verification harness."""

from repro.casestudy import CaseStudyConfig, run_trial
from repro.verify import (CampaignSettings, FaultScenario, blackout_scenario,
                          bounded_dwelling_property, compare_lease_vs_baseline,
                          pte_safety_property, run_case_study_campaign,
                          single_risky_visit_per_round_property,
                          standard_fault_scenarios)
from repro.verify.properties import auto_reset_property
from repro.wireless import PerfectChannel
from repro.wireless.channel import BernoulliChannel, GilbertElliottChannel, ScriptedChannel

CONFIG = CaseStudyConfig()


class TestFaultScenarios:
    def test_standard_family_builds_channels(self):
        scenarios = standard_fault_scenarios()
        names = {s.name for s in scenarios}
        assert "perfect" in names
        kinds = {type(s.build_channel(seed=1)) for s in scenarios}
        assert PerfectChannel in kinds or BernoulliChannel in kinds
        assert any(isinstance(s.build_channel(1), GilbertElliottChannel)
                   for s in scenarios)

    def test_blackout_scenario(self):
        channel = blackout_scenario(10.0, 20.0).build_channel()
        assert isinstance(channel, ScriptedChannel)
        assert not channel.attempt(15.0).received_by_application
        assert channel.attempt(25.0).received_by_application


class TestProperties:
    def _safe_trace(self):
        result = run_trial(CONFIG, with_lease=True, seed=8, duration=300.0,
                           keep_trace=True)
        return result.trace

    def test_pte_safety_property_on_lease_trace(self):
        prop = pte_safety_property(CONFIG.rules())
        assert prop.evaluate(self._safe_trace()).holds

    def test_bounded_dwelling_property(self):
        trace = self._safe_trace()
        ok = bounded_dwelling_property(["ventilator", "laser_scalpel"], 60.0)
        assert ok.evaluate(trace).holds
        tight = bounded_dwelling_property(["ventilator", "laser_scalpel"], 0.5)
        # With any emission at all, a 0.5 s bound cannot hold.
        emitted = trace.count_entries("laser_scalpel", "xi2.Risky Core") > 0
        assert tight.evaluate(trace).holds != emitted or not emitted

    def test_auto_reset_property(self):
        trace = self._safe_trace()
        auto_reset_property(
            ["ventilator", "laser_scalpel"],
            {"ventilator": "PumpOut", "laser_scalpel": "xi2.Fall-Back"},
            horizon=CONFIG.pattern.round_horizon + CONFIG.pattern.t_wait_max)
        # The ventilator's Fall-Back is elaborated into PumpOut/PumpIn, so we
        # only check the laser here (its Fall-Back is a single location).
        laser_only = auto_reset_property(
            ["laser_scalpel"], {"laser_scalpel": "xi2.Fall-Back"},
            horizon=CONFIG.pattern.round_horizon)
        assert laser_only.evaluate(trace).holds

    def test_single_risky_visit_per_round(self):
        trace = self._safe_trace()
        prop = single_risky_visit_per_round_property(
            "laser_scalpel", "evt_xi0_to_xi1_lease_req")
        assert prop.evaluate(trace).holds


class TestCampaigns:
    def test_lease_campaign_passes_everywhere(self):
        settings = CampaignSettings(
            scenarios=[FaultScenario("perfect", "no loss", kind="perfect"),
                       FaultScenario("heavy", "50% loss", {"loss_probability": 0.5},
                                     kind="bernoulli")],
            seeds_per_scenario=2, trial_duration=300.0, master_seed=11, with_lease=True)
        report = run_case_study_campaign(CONFIG, settings)
        assert report.total_trials == 4
        assert report.all_passed, report.summary()
        assert report.pass_rate() == 1.0

    def test_report_bookkeeping(self):
        settings = CampaignSettings(
            scenarios=[FaultScenario("perfect", "no loss", kind="perfect")],
            seeds_per_scenario=2, trial_duration=200.0, master_seed=5, with_lease=True)
        report = run_case_study_campaign(CONFIG, settings)
        by_scenario = report.by_scenario()
        assert by_scenario["perfect"] == (2, 2)
        assert "pass rate" in report.summary()


class TestCompareLeaseVsBaseline:
    PERFECT = [FaultScenario("perfect", "no loss", kind="perfect")]

    def test_zero_violations_in_both_arms(self):
        # Even without leases the baseline survives some no-loss trials
        # (its failures are margin/dwell driven, not loss driven); with
        # this seed both arms come back clean and the comparison must
        # report that symmetric outcome, not divide by zero or invent a
        # difference.
        settings = CampaignSettings(scenarios=self.PERFECT,
                                    seeds_per_scenario=1,
                                    trial_duration=150.0, master_seed=1)
        reports = compare_lease_vs_baseline(CONFIG, settings)
        assert set(reports) == {"with_lease", "without_lease"}
        for report in reports.values():
            assert report.total_trials == 1
            assert report.all_passed
            assert report.pass_rate() == 1.0
            assert report.failures == []

    def test_single_replicate_per_arm(self):
        # seeds_per_scenario=1 is the degenerate campaign: one trial per
        # arm, and both arms must draw the *same* seed so the comparison
        # is paired.
        settings = CampaignSettings(scenarios=self.PERFECT,
                                    seeds_per_scenario=1,
                                    trial_duration=150.0, master_seed=2)
        reports = compare_lease_vs_baseline(CONFIG, settings)
        with_arm = reports["with_lease"]
        without_arm = reports["without_lease"]
        assert with_arm.total_trials == without_arm.total_trials == 1
        assert with_arm.trials[0].seed == without_arm.trials[0].seed
        assert with_arm.all_passed
        # master_seed=2 is a no-loss trial the baseline loses on margin.
        assert not without_arm.all_passed
        assert without_arm.by_scenario()["perfect"] == (0, 1)
        assert without_arm.pass_rate() == 0.0
