"""Test package."""
