"""Tests for the wireless substrate: packets, channels, network, statistics."""

import pytest

from repro.errors import ModelError
from repro.wireless import (BernoulliChannel, DeliveryOutcome, GilbertElliottChannel,
                            InterferenceSource, LinkDirection, LossWindow,
                            NetworkStatistics, Packet, PerfectChannel, ScriptedChannel,
                            SinkWirelessNetwork, TraceChannel)


class TestPacket:
    def test_checksum_round_trip(self):
        packet = Packet.create(sequence=1, source="a", destination="b",
                               event_root="evt", timestamp=0.0, payload=b"xyz")
        assert packet.verify_checksum()

    def test_corrupted_copy_fails_checksum(self):
        packet = Packet.create(sequence=1, source="a", destination="b",
                               event_root="evt", timestamp=0.0)
        assert not packet.corrupted_copy().verify_checksum()

    def test_delivery_outcome_semantics(self):
        assert DeliveryOutcome.DELIVERED.received_by_application
        assert not DeliveryOutcome.LOST.received_by_application
        assert not DeliveryOutcome.CORRUPTED.received_by_application


class TestChannels:
    def test_perfect_channel_never_loses(self):
        channel = PerfectChannel()
        assert all(channel.attempt(t) is DeliveryOutcome.DELIVERED for t in range(100))

    def test_bernoulli_loss_rate(self):
        channel = BernoulliChannel(0.3, seed=1)
        outcomes = [channel.attempt(float(t)) for t in range(4000)]
        loss = sum(1 for o in outcomes if not o.received_by_application) / len(outcomes)
        assert 0.25 < loss < 0.35

    def test_bernoulli_extremes(self):
        assert BernoulliChannel(0.0, seed=1).attempt(0.0) is DeliveryOutcome.DELIVERED
        assert not BernoulliChannel(1.0, seed=1).attempt(0.0).received_by_application

    def test_bernoulli_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            BernoulliChannel(1.5)

    def test_bernoulli_reset_reproducibility(self):
        channel = BernoulliChannel(0.5, seed=3)
        first = [channel.attempt(float(t)) for t in range(50)]
        channel.reset(3, stream="")
        second = [channel.attempt(float(t)) for t in range(50)]
        assert first == second

    def test_gilbert_elliott_burstiness(self):
        channel = GilbertElliottChannel(mean_good_duration=100.0, mean_bad_duration=20.0,
                                        loss_good=0.0, loss_bad=1.0, seed=5)
        losses = [not channel.attempt(t * 0.5).received_by_application
                  for t in range(4000)]
        loss_rate = sum(losses) / len(losses)
        # Expected time share in bad state ~ 20/120.
        assert 0.05 < loss_rate < 0.35
        # Losses must be clustered: the number of state flips in the loss
        # sequence is far below what independent losses would produce.
        flips = sum(1 for a, b in zip(losses, losses[1:]) if a != b)
        assert flips < len(losses) * 0.2

    def test_gilbert_invalid_durations(self):
        with pytest.raises(ValueError):
            GilbertElliottChannel(mean_good_duration=0.0, mean_bad_duration=1.0)

    def test_scripted_channel_windows(self):
        channel = ScriptedChannel([LossWindow(10.0, 20.0)])
        assert channel.attempt(5.0) is DeliveryOutcome.DELIVERED
        assert channel.attempt(15.0) is DeliveryOutcome.LOST
        assert channel.attempt(25.0) is DeliveryOutcome.DELIVERED

    def test_loss_window_validation(self):
        with pytest.raises(ValueError):
            LossWindow(5.0, 1.0)

    def test_trace_channel_replays_and_repeats_last(self):
        channel = TraceChannel([True, False, True])
        outcomes = [channel.attempt(float(t)).received_by_application for t in range(5)]
        assert outcomes == [True, False, True, True, True]


class TestInterferenceSource:
    def test_channel_calibration(self):
        source = InterferenceSource(data_rate_mbps=3.0, duty_cycle=0.2,
                                    mean_burst_duration=40.0)
        channel = source.to_channel(seed=1)
        assert isinstance(channel, GilbertElliottChannel)
        assert channel.mean_bad_duration == pytest.approx(40.0)
        assert channel.mean_good_duration == pytest.approx(160.0)
        assert 0.5 <= source.in_burst_loss_probability() <= 0.99

    def test_average_channel_matches_mean_loss(self):
        source = InterferenceSource(duty_cycle=0.2, mean_burst_duration=40.0)
        average = source.to_average_channel(seed=1)
        expected = (0.2 * source.in_burst_loss_probability()
                    + 0.8 * source.background_loss_probability())
        assert average.loss_probability == pytest.approx(expected)

    def test_invalid_duty_cycle(self):
        with pytest.raises(ValueError):
            InterferenceSource(duty_cycle=0.0)


class TestSinkWirelessNetwork:
    def _network(self, channel=None):
        return SinkWirelessNetwork(base_station="base",
                                   remote_entities=["r1", "r2"],
                                   default_channel=channel or PerfectChannel())

    def test_link_directions(self):
        network = self._network()
        assert network.direction("base", "r1") is LinkDirection.DOWNLINK
        assert network.direction("r1", "base") is LinkDirection.UPLINK
        assert network.direction("r1", "r1") is LinkDirection.LOCAL

    def test_remote_to_remote_forbidden(self):
        network = self._network()
        with pytest.raises(ModelError):
            network.direction("r1", "r2")

    def test_delivery_recorded_in_statistics(self):
        network = self._network()
        assert network.attempt_delivery("base", "r1", "evt", 1.0)
        assert network.statistics.link("base", "r1").sent == 1
        assert network.observed_loss_ratio() == 0.0

    def test_per_link_channel_overrides(self):
        network = self._network()
        network.set_downlink_channel("r1", ScriptedChannel([(0.0, 100.0)]))
        assert not network.attempt_delivery("base", "r1", "evt", 5.0)
        assert network.attempt_delivery("base", "r2", "evt", 5.0)
        assert network.attempt_delivery("r1", "base", "evt", 5.0)  # uplink unaffected

    def test_reset_clears_statistics(self):
        network = self._network()
        network.attempt_delivery("base", "r1", "evt", 1.0)
        network.reset(seed=1)
        assert network.statistics.total_sent == 0
        assert network.packet_log == []

    def test_base_station_cannot_be_remote(self):
        with pytest.raises(ModelError):
            SinkWirelessNetwork(base_station="x", remote_entities=["x"])


class TestStatistics:
    def test_aggregation(self):
        stats = NetworkStatistics()
        stats.record("a", "b", DeliveryOutcome.DELIVERED)
        stats.record("a", "b", DeliveryOutcome.LOST)
        stats.record("b", "a", DeliveryOutcome.CORRUPTED)
        assert stats.total_sent == 3
        assert stats.total_delivered == 1
        assert stats.link("a", "b").loss_ratio == pytest.approx(0.5)
        assert stats.overall_loss_ratio == pytest.approx(2.0 / 3.0)
        assert len(stats.summary_rows()) == 2
