#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation set.

Scans every ``*.md`` file in the repository root and under ``docs/`` and
verifies that

* relative file links point at files (or directories) that exist;
* fragment links (``#section``, alone or after a file path) resolve to a
  heading in the target document, using GitHub's anchor slug rules
  (lowercase, spaces to dashes, punctuation stripped).

External links (``http(s)://``, ``mailto:``) are not fetched — CI must
stay offline-safe — but everything that can rot silently inside the repo
is checked.  Exit status is 0 when every link resolves, 1 otherwise.

Usage::

    python tools/check_docs_links.py [ROOT]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links: ``[text](target)``.  Images share the syntax.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: ATX headings, used to build the set of valid anchors per document.
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)

#: Fenced code blocks are stripped before link extraction so shell
#: snippets like ``array[index](...)`` do not read as links.
_FENCE = re.compile(r"```.*?```", re.DOTALL)

_EXTERNAL = ("http://", "https://", "mailto:")


def github_slug(heading: str) -> str:
    """Reduce a heading to its GitHub anchor slug.

    Args:
        heading: The heading text, markdown formatting included.

    Returns:
        The anchor GitHub would generate for it.
    """
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    """Collect the valid anchor slugs of one markdown document."""
    text = path.read_text(encoding="utf-8")
    return {github_slug(match.group(1))
            for match in _HEADING.finditer(_FENCE.sub("", text))}


def check_file(path: Path, root: Path) -> list:
    """Check one markdown file, returning a list of error strings."""
    errors = []
    text = _FENCE.sub("", path.read_text(encoding="utf-8"))
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL):
            continue
        file_part, _, fragment = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(root)}: broken link "
                              f"{target!r} (no such file)")
                continue
        else:
            resolved = path
        if fragment and resolved.suffix == ".md":
            if fragment not in anchors_of(resolved):
                errors.append(f"{path.relative_to(root)}: broken anchor "
                              f"{target!r} (no heading with that slug in "
                              f"{resolved.name})")
    return errors


def main(argv: list) -> int:
    """Check every markdown document; print findings; return exit status."""
    root = Path(argv[1]).resolve() if len(argv) > 1 else \
        Path(__file__).resolve().parents[1]
    documents = sorted(root.glob("*.md")) + sorted((root / "docs").glob("**/*.md"))
    errors = []
    for document in documents:
        errors.extend(check_file(document, root))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(documents)} markdown file(s): "
          f"{'FAIL' if errors else 'ok'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
